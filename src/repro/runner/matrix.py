"""Scenario-matrix harness: {dataset × scale × churn regime × serving load}.

The three committed benches cover three hand-picked happy paths; the matrix
covers the cross product.  A declarative :class:`MatrixConfig` expands into
frozen, content-hashed :class:`MatrixCell` s (the same hashing contract as
:class:`repro.runner.plan.Cell`), each cell replays an adversarial or
steady delta schedule through the incremental condenser — optionally under
a live :class:`~repro.serving.hotswap.ServingController` answering
predictions between swaps — verifies byte-identity against a fresh full
condensation, and lands its result in the shared
:class:`~repro.runner.cache.ArtifactStore`.  Interrupting the suite and
re-running it skips every completed cell (resume-zero-reexec), which is
what lets CI kill a run mid-suite and assert nothing re-executes.

Per-cell **regression gates** (:mod:`repro.runner.gates`) derived from the
committed ``BENCH_*.json`` baselines are evaluated over the consolidated
results: byte-identity everywhere it was verified, ratio/latency thresholds
where the baseline's preconditions hold, every outcome stamped with the
baseline's provenance.

``python -m repro matrix`` is the CLI entry point; see ``docs/testing.md``
for the taxonomy and how to add a regime.

Examples
--------
>>> from repro.runner.matrix import MatrixConfig, plan_matrix
>>> plan = plan_matrix(MatrixConfig(datasets=("acm",), scales=(0.1,),
...                                 regimes=("steady", "hub-deletion"),
...                                 loads=("none",), steps=2))
>>> len(plan), plan.cells[0].regime
(2, 'steady')
>>> plan.cells[0].key() == plan_matrix(MatrixConfig(datasets=("acm",),
...     scales=(0.1,), regimes=("steady", "hub-deletion"), loads=("none",),
...     steps=2)).cells[0].key()
True
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from time import perf_counter
from typing import Callable, Iterator

import numpy as np

from repro import registry
from repro.errors import CanaryRejectedError, ConfigurationError
from repro.runner.cache import ArtifactStore
from repro.runner.gates import Gate, GateOutcome, evaluate_cell_gates
from repro.runner.plan import resolve_max_hops

__all__ = [
    "LOADS",
    "MatrixConfig",
    "MatrixCell",
    "MatrixPlan",
    "MatrixOutcome",
    "plan_matrix",
    "run_matrix_cell",
    "run_matrix",
    "consolidate",
]

#: serving-load levels and the queries issued per step under each
LOADS = ("none", "light", "heavy")
_QUERIES_PER_STEP = {"none": 0, "light": 32, "heavy": 256}
_QUERY_BATCH = 8


@dataclass(frozen=True)
class MatrixConfig:
    """Declarative description of one scenario matrix."""

    datasets: tuple[str, ...] = ("acm",)
    scales: tuple[float, ...] = (0.1,)
    regimes: tuple[str, ...] = (
        "steady",
        "dirty-maximizer",
        "hub-deletion",
        "burst-arrival",
        "skewed-types",
    )
    loads: tuple[str, ...] = ("none",)
    steps: int = 4
    ratio: float = 0.2
    seed: int = 0
    max_hops: int | None = None
    recondense_threshold: float = 0.05
    #: verify byte-identity every N steps (0 = final step only)
    verify_every: int = 0
    hidden_dim: int = 16
    epochs: int = 15
    model: str = "heterosgc"
    #: install a deterministic FaultInjector in serving-load cells
    inject_faults: bool = False

    def __post_init__(self) -> None:
        from repro.datasets.adversarial import churn_regimes

        if not self.datasets:
            raise ConfigurationError("matrix needs at least one dataset")
        if not self.scales or any(s <= 0 for s in self.scales):
            raise ConfigurationError(f"scales must be positive, got {self.scales}")
        if not self.regimes:
            raise ConfigurationError("matrix needs at least one churn regime")
        known = set(churn_regimes())
        unknown = [r for r in self.regimes if r not in known]
        if unknown:
            raise ConfigurationError(
                f"unknown churn regimes {unknown}; known: {sorted(known)}"
            )
        bad_loads = [l for l in self.loads if l not in LOADS]
        if not self.loads or bad_loads:
            raise ConfigurationError(f"loads must be drawn from {LOADS}, got {self.loads}")
        if self.steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {self.steps}")
        if not 0.0 < self.ratio <= 1.0:
            raise ConfigurationError(f"ratio must be in (0, 1], got {self.ratio}")
        if self.verify_every < 0:
            raise ConfigurationError("verify_every must be >= 0")


@dataclass(frozen=True)
class MatrixCell:
    """One self-contained matrix cell; hashes like :class:`repro.runner.plan.Cell`."""

    dataset: str
    scale: float
    regime: str
    load: str
    steps: int
    ratio: float
    seed: int
    max_hops: int
    recondense_threshold: float
    verify_every: int
    hidden_dim: int
    epochs: int
    model: str
    inject_faults: bool
    kind: str = "matrix"

    def to_dict(self) -> dict[str, object]:
        """JSON-safe field dict (the canonical form :meth:`key` hashes)."""
        payload: dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, float):
                value = float(value)
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "MatrixCell":
        names = {spec.name for spec in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})

    def key(self) -> str:
        """Stable 16-hex-digit content hash (same contract as ``Cell.key``)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        """Human-oriented progress label."""
        return (
            f"{self.dataset}@{self.scale:g} {self.regime} load={self.load}"
            + (" +faults" if self.inject_faults and self.load != "none" else "")
        )


@dataclass(frozen=True)
class MatrixPlan:
    """An ordered tuple of matrix cells plus a description."""

    cells: tuple[MatrixCell, ...]
    description: str = ""

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[MatrixCell]:
        return iter(self.cells)

    def keys(self) -> tuple[str, ...]:
        """The cell hashes, in plan order."""
        return tuple(cell.key() for cell in self.cells)


def plan_matrix(config: MatrixConfig) -> MatrixPlan:
    """Expand ``config`` into the full dataset × scale × regime × load grid."""
    cells = []
    for dataset in config.datasets:
        max_hops = resolve_max_hops(dataset, config.max_hops)
        for scale in config.scales:
            for regime in config.regimes:
                for load in config.loads:
                    cells.append(
                        MatrixCell(
                            dataset=dataset,
                            scale=float(scale),
                            regime=regime,
                            load=load,
                            steps=config.steps,
                            ratio=float(config.ratio),
                            seed=config.seed,
                            max_hops=max_hops,
                            recondense_threshold=float(config.recondense_threshold),
                            verify_every=config.verify_every,
                            hidden_dim=config.hidden_dim,
                            epochs=config.epochs,
                            model=config.model,
                            inject_faults=bool(config.inject_faults),
                        )
                    )
    description = (
        f"{len(config.datasets)} datasets x {len(config.scales)} scales x "
        f"{len(config.regimes)} regimes x {len(config.loads)} loads"
    )
    return MatrixPlan(cells=tuple(cells), description=description)


# --------------------------------------------------------------------------- #
# Cell execution
# --------------------------------------------------------------------------- #
def _should_verify(cell: MatrixCell, step: int) -> bool:
    if cell.verify_every:
        return step % cell.verify_every == 0
    return step == cell.steps  # default: final checkpoint only


def run_matrix_cell(cell: MatrixCell) -> dict:
    """Execute one cell; returns a JSON-safe result dict.

    Deterministic given the cell (dataset load, schedule generation,
    condensation and training are all seeded by ``cell.seed``); wall-clock
    fields are the only run-dependent values.
    """
    from repro.core.condenser import FreeHGC
    from repro.datasets.generators import generate_delta_schedule
    from repro.evaluation.timing import summarize_latencies
    from repro.streaming import DeltaApplier, IncrementalCondenser, graphs_equal
    from repro.utils import faults

    started = perf_counter()
    entry = registry.datasets.get(cell.dataset)
    graph = entry.loader(scale=cell.scale, seed=cell.seed)
    target_nodes = int(graph.num_nodes[graph.schema.target_type])
    schedule = generate_delta_schedule(
        graph,
        steps=cell.steps,
        seed=cell.seed,
        regime=cell.regime,
        regime_params=(
            None
            if cell.regime == "steady"
            else {"recondense_threshold": cell.recondense_threshold}
        ),
    )

    controller = None
    if cell.load == "none":
        incremental = IncrementalCondenser(
            graph,
            condenser=FreeHGC(max_hops=cell.max_hops),
            ratio=cell.ratio,
            recondense_threshold=cell.recondense_threshold,
            seed=cell.seed,
        )
    else:
        from repro.evaluation.pipeline import make_model_factory
        from repro.serving.canary import CanaryConfig
        from repro.serving.hotswap import ServingController

        factory = make_model_factory(
            cell.model,
            hidden_dim=cell.hidden_dim,
            epochs=cell.epochs,
            max_hops=cell.max_hops,
            seed=cell.seed,
        )
        controller = ServingController(
            graph,
            factory,
            model_name=cell.model,
            ratio=cell.ratio,
            condenser=FreeHGC(max_hops=cell.max_hops),
            recondense_threshold=cell.recondense_threshold,
            seed=cell.seed,
            # Canary gate in blow-up-detection mode: adversarial regimes
            # legitimately move clean predictions after a retrain, so the
            # consistency floor is off; the finite check still rejects any
            # candidate whose training produced NaN/Inf logits, and the
            # canary-rejections matrix gate pins that count at zero.
            canary=CanaryConfig(size=32, min_consistency=0.0, seed=cell.seed),
        )

    injector = None
    if cell.inject_faults and controller is not None:
        # Deterministic per-cell fault plan: stretch every second hot-swap's
        # publish window so queries race a slow swap.
        injector = faults.FaultInjector(seed=cell.seed)
        injector.plan("hotswap.delay_publish", every=2, seconds=0.001)
        faults.install(injector)

    replica = graph.copy()
    replica_applier = DeltaApplier()
    modes: dict[str, int] = {"full": 0, "incremental": 0}
    incremental_seconds: list[float] = []
    full_seconds: list[float] = []
    latencies: list[float] = []
    queries = 0
    prediction_failures = 0
    verified_checkpoints = 0
    mismatches = 0
    max_edge_fraction = 0.0
    dirty_max = 0

    try:
        cold_start = perf_counter()
        if controller is None:
            incremental.condense()
        else:
            controller.start()
        cold_seconds = perf_counter() - cold_start

        for delta in schedule:
            live = graph  # both paths mutate the originally loaded graph
            max_edge_fraction = max(max_edge_fraction, delta.edge_fraction(live))
            if controller is None:
                step_report = incremental.step(delta)
                mode = step_report.mode
                condense_seconds = step_report.condense_seconds
                condensed = step_report.condensed
                dirty = getattr(step_report.apply_report, "dirty_targets", None)
                if dirty is not None:
                    dirty_max = max(dirty_max, int(np.asarray(dirty).size))
            else:
                try:
                    swap = controller.apply_delta(delta)
                except CanaryRejectedError:
                    # The candidate was rejected (non-finite logits) and the
                    # previous session keeps serving.  Keep the replica in
                    # sync and move on: the canary-rejections gate fails the
                    # cell from the recorded count instead of crashing the
                    # whole suite run.
                    replica_applier.apply(replica, delta)
                    continue
                mode = swap.mode
                condense_seconds = swap.condense_seconds
                condensed = controller.condensed
                if swap.dirty_count >= 0:
                    dirty_max = max(dirty_max, int(swap.dirty_count))
            modes[mode] = modes.get(mode, 0) + 1
            if mode == "incremental":
                incremental_seconds.append(condense_seconds)

            replica_applier.apply(replica, delta)
            if _should_verify(cell, delta.step):
                full_start = perf_counter()
                full = FreeHGC(max_hops=cell.max_hops).condense(
                    replica, cell.ratio, seed=cell.seed
                )
                full_seconds.append(perf_counter() - full_start)
                verified_checkpoints += 1
                if not graphs_equal(condensed, full):
                    mismatches += 1

            if controller is not None:
                session = controller.session
                per_step = _QUERIES_PER_STEP[cell.load]
                rng = np.random.default_rng([cell.seed, delta.step])
                issued = 0
                while issued < per_step:
                    size = min(_QUERY_BATCH, per_step - issued)
                    ids = rng.integers(0, session.num_targets, size=size)
                    t0 = perf_counter()
                    predictions = session.predict(ids)
                    latencies.append(perf_counter() - t0)
                    expected = np.argmax(session.logits(ids), axis=1)
                    prediction_failures += int((predictions != expected).sum())
                    issued += size
                queries += issued
    finally:
        if injector is not None:
            faults.uninstall()

    median_incremental = (
        float(np.median(incremental_seconds)) if incremental_seconds else None
    )
    median_full = float(np.median(full_seconds)) if full_seconds else None
    speedup = (
        median_full / median_incremental
        if median_incremental and median_full
        else None
    )
    result: dict[str, object] = {
        "dataset": cell.dataset,
        "scale": cell.scale,
        "regime": cell.regime,
        "load": cell.load,
        "steps": cell.steps,
        "target_nodes": target_nodes,
        "modes": modes,
        "threshold_fallbacks": int(modes.get("full", 0)),
        "max_edge_fraction": float(max_edge_fraction),
        "dirty_targets_max": int(dirty_max),
        "cold_condense_seconds": float(cold_seconds),
        "median_incremental_seconds": median_incremental,
        "median_full_seconds": median_full,
        "speedup": speedup,
        "verified_checkpoints": int(verified_checkpoints),
        "mismatches": int(mismatches),
        "queries": int(queries),
        "prediction_failures": int(prediction_failures),
        "canary_evaluations": (
            len(controller.canary_history) if controller is not None else 0
        ),
        "canary_rejections": (
            int(controller.canary_rejections) if controller is not None else 0
        ),
        "latency_ms": (
            {
                key: value * 1e3
                for key, value in summarize_latencies(latencies).items()
                if key in ("p50", "p95", "p99", "mean", "max")
            }
            if latencies
            else {}
        ),
        "fault_fires": dict(injector.fires) if injector is not None else {},
        "elapsed_seconds": float(perf_counter() - started),
    }
    return result


def execute_matrix_payload(payload: dict) -> dict:
    """Process-pool entry point: rebuild the cell and run it."""
    return run_matrix_cell(MatrixCell.from_dict(payload))


# --------------------------------------------------------------------------- #
# Suite driver
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MatrixOutcome:
    """One cell's completion record (compatible with the CLI progress printer)."""

    cell: MatrixCell
    result: dict
    cached: bool
    elapsed_s: float


def run_matrix(
    plan: MatrixPlan,
    *,
    store: ArtifactStore | None = None,
    workers: int = 1,
    force: bool = False,
    progress: Callable[[MatrixOutcome, int, int], None] | None = None,
) -> list[MatrixOutcome]:
    """Run every cell of ``plan``, resuming from ``store`` when possible.

    Completed cells (present in ``store`` under their content hash) are
    returned as ``cached`` outcomes without re-executing — the property the
    CI matrix-smoke job asserts by killing a run mid-suite.  ``workers > 1``
    fans the *remaining* cells over a process pool; results and store
    contents are identical either way because each cell is deterministic.
    """
    total = len(plan.cells)
    outcomes: dict[int, MatrixOutcome] = {}
    pending: list[tuple[int, MatrixCell]] = []
    for index, cell in enumerate(plan.cells):
        record = None if (store is None or force) else store.get(cell.key())
        if record is not None:
            meta = record.get("meta", {})
            outcomes[index] = MatrixOutcome(
                cell=cell,
                result=dict(record.get("result", {})),
                cached=True,
                elapsed_s=float(meta.get("elapsed_s", 0.0)) if isinstance(meta, dict) else 0.0,
            )
        else:
            pending.append((index, cell))

    if progress is not None:
        # Report skipped (resumed) cells up front, in plan order — the
        # resume-zero-reexec CI assertion counts these "cached" lines.
        for index in sorted(outcomes):
            progress(outcomes[index], index, total)

    def record_outcome(index: int, cell: MatrixCell, result: dict, elapsed: float) -> None:
        if store is not None:
            store.put(cell.key(), cell.to_dict(), result, elapsed_s=elapsed)
        outcomes[index] = MatrixOutcome(
            cell=cell, result=result, cached=False, elapsed_s=elapsed
        )

    if workers <= 1 or len(pending) <= 1:
        for index, cell in pending:
            t0 = perf_counter()
            result = run_matrix_cell(cell)
            record_outcome(index, cell, result, perf_counter() - t0)
            if progress is not None:
                progress(outcomes[index], index, total)
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {
                pool.submit(execute_matrix_payload, cell.to_dict()): (index, cell)
                for index, cell in pending
            }
            for future, (index, cell) in futures.items():
                t0 = perf_counter()
                result = future.result()
                record_outcome(index, cell, result, perf_counter() - t0)
                if progress is not None:
                    progress(outcomes[index], index, total)

    return [outcomes[index] for index in range(total)]


def consolidate(
    outcomes: list[MatrixOutcome], gates: tuple[Gate, ...]
) -> dict:
    """Assemble the consolidated suite report (JSON-safe).

    Per cell: the cell spec, its result, and every gate outcome.  The
    summary counts enforced-gate failures and byte-identity mismatches —
    the two conditions that fail the suite.
    """
    cells = []
    gate_failures = 0
    mismatches = 0
    for outcome in outcomes:
        cell_dict = outcome.cell.to_dict()
        evaluated = evaluate_cell_gates(cell_dict, outcome.result, gates)
        failed = [g for g in evaluated if g.enforced and g.passed is False]
        gate_failures += len(failed)
        mismatches += int(outcome.result.get("mismatches", 0) or 0)
        cells.append(
            {
                "key": outcome.cell.key(),
                "cell": cell_dict,
                "cached": outcome.cached,
                "elapsed_s": outcome.elapsed_s,
                "result": outcome.result,
                "gates": [g.to_dict() for g in evaluated],
                "failed_gates": [g.name for g in failed],
            }
        )
    return {
        "version": 1,
        "cells": cells,
        "gates": [gate.to_dict() for gate in gates],
        "summary": {
            "total": len(outcomes),
            "cached": sum(1 for o in outcomes if o.cached),
            "executed": sum(1 for o in outcomes if not o.cached),
            "verified_checkpoints": sum(
                int(o.result.get("verified_checkpoints", 0) or 0) for o in outcomes
            ),
            "mismatches": mismatches,
            "gate_failures": gate_failures,
            "passed": gate_failures == 0 and mismatches == 0,
        },
    }
