"""Per-cell regression gates derived from the committed ``BENCH_*.json`` baselines.

The repo tracks its perf trajectory in three committed baseline files —
``BENCH_perf_hotpaths.json``, ``BENCH_streaming.json`` and
``BENCH_serving.json`` — but until the scenario matrix existed they only
gated three hand-picked benchmark runs.  This module promotes them into
*per-cell* gates: every cell of ``python -m repro matrix`` is checked
against thresholds derived from the committed numbers, stamped with the
baseline's provenance so a failing gate names the exact commit it regressed
against.

Two gate styles, matching how the benchmarks themselves gate:

* **byte-identity** — enforced for *every* cell that verified, at any
  scale: the invariants (incremental == full recondensation, batched ==
  serial predictions) are scale independent, so one mismatch anywhere is a
  regression.
* **ratio/latency thresholds** — enforced only where the baseline's
  preconditions hold (steady regime, no serving load, pools past the
  baseline's size threshold; or an absolute latency ceiling with generous
  CI headroom), and *recorded* everywhere else so the trajectory is still
  visible per cell.

Baselines written before provenance stamping existed (pre-PR-6) lack the
``provenance`` block entirely; :func:`read_baseline` tolerates that by
filling ``{"git_revision": "unknown", "generated_at": "unknown"}`` instead
of raising ``KeyError`` at gate time.  ``benchmarks/common.py`` re-exports
the same reader so the benchmark scripts and the matrix agree on baseline
semantics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "UNKNOWN_PROVENANCE",
    "BASELINE_FILES",
    "read_baseline",
    "Gate",
    "GateOutcome",
    "derive_matrix_gates",
    "evaluate_cell_gates",
]

#: defaults filled into baselines written before provenance stamping existed
UNKNOWN_PROVENANCE = {"git_revision": "unknown", "generated_at": "unknown"}

#: the committed trajectory baselines, in the order they were introduced
BASELINE_FILES = (
    "BENCH_perf_hotpaths.json",
    "BENCH_streaming.json",
    "BENCH_serving.json",
)


def read_baseline(path: str | Path) -> dict:
    """Read one committed ``BENCH_*.json`` baseline, tolerantly.

    Returns ``{}`` for a missing or unparseable file (gating against
    nothing is "no gate", not a crash), and guarantees the result of a
    successful read has a complete ``provenance`` block — files written
    before provenance stamping (pre-PR-6) get :data:`UNKNOWN_PROVENANCE`
    defaults merged in, so ``baseline["provenance"]["git_revision"]`` is
    always a safe read.

    Examples
    --------
    >>> read_baseline("/nonexistent/BENCH_nothing.json")
    {}
    """
    path = Path(path)
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if not isinstance(payload, dict):
        return {}
    provenance = payload.get("provenance")
    if not isinstance(provenance, dict):
        provenance = {}
    payload["provenance"] = {**UNKNOWN_PROVENANCE, **provenance}
    return payload


@dataclass(frozen=True)
class Gate:
    """One derived regression gate.

    ``kind`` is ``"max_value"`` (observed must be <= threshold) or
    ``"min_value"`` (observed must be >= threshold); ``metric`` is a
    dot-path into a matrix cell's result dict.  The applicability logic —
    *which* cells the gate is enforced for — lives in
    :func:`evaluate_cell_gates`, keyed by the gate's ``name``.
    """

    name: str
    kind: str
    metric: str
    threshold: float
    baseline_file: str
    baseline_value: float | None
    provenance: dict
    description: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "metric": self.metric,
            "threshold": self.threshold,
            "baseline_file": self.baseline_file,
            "baseline_value": self.baseline_value,
            "provenance": dict(self.provenance),
            "description": self.description,
        }


@dataclass(frozen=True)
class GateOutcome:
    """One gate evaluated against one cell's result."""

    name: str
    enforced: bool
    passed: bool | None  # None: metric absent from this cell's result
    observed: float | None
    threshold: float
    baseline_file: str
    baseline_revision: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "enforced": self.enforced,
            "passed": self.passed,
            "observed": self.observed,
            "threshold": self.threshold,
            "baseline_file": self.baseline_file,
            "baseline_revision": self.baseline_revision,
        }


def _metric(result: dict, path: str) -> float | None:
    value: object = result
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    if value is None:
        return None
    return float(value)  # type: ignore[arg-type]


def derive_matrix_gates(baseline_dir: str | Path = ".") -> tuple[Gate, ...]:
    """Derive per-cell gates from the committed baselines in ``baseline_dir``.

    Missing baselines simply contribute no gates (a fresh checkout without
    committed BENCH files still runs the matrix, ungated).
    """
    baseline_dir = Path(baseline_dir)
    perf = read_baseline(baseline_dir / "BENCH_perf_hotpaths.json")
    streaming = read_baseline(baseline_dir / "BENCH_streaming.json")
    serving = read_baseline(baseline_dir / "BENCH_serving.json")

    gates: list[Gate] = []
    if streaming:
        gates.append(
            Gate(
                name="byte-identity",
                kind="max_value",
                metric="mismatches",
                threshold=0.0,
                baseline_file="BENCH_streaming.json",
                baseline_value=float(streaming.get("byte_identical_checkpoints", 0)),
                provenance=dict(streaming["provenance"]),
                description=(
                    "incremental condensation must equal full recondensation "
                    "at every verified checkpoint (scale independent)"
                ),
            )
        )
        speedup = streaming.get("speedup")
        pool_threshold = int(streaming.get("target_nodes", 1500))
        if speedup:
            gates.append(
                Gate(
                    name="incremental-speedup",
                    kind="min_value",
                    metric="speedup",
                    # A quarter of the committed speedup, never below break
                    # even: per-cell schedules differ from the bench's, so
                    # the gate tracks order of magnitude, not the exact ratio.
                    threshold=max(1.0, 0.25 * float(speedup)),
                    baseline_file="BENCH_streaming.json",
                    baseline_value=float(speedup),
                    provenance=dict(streaming["provenance"]),
                    description=(
                        "steady-regime incremental steps must stay well "
                        f"faster than full recondensation (baseline "
                        f"{float(speedup):.1f}x at >= {pool_threshold} targets)"
                    ),
                )
            )
    if perf:
        rows = perf.get("rows", [])
        identical = [bool(row.get("identical", False)) for row in rows]
        gates.append(
            Gate(
                name="prediction-consistency",
                kind="max_value",
                metric="prediction_failures",
                threshold=0.0,
                baseline_file="BENCH_perf_hotpaths.json",
                baseline_value=float(sum(identical)),
                provenance=dict(perf["provenance"]),
                description=(
                    "served predictions must match the unbatched reference "
                    "exactly (same identity contract the kernel bench gates)"
                ),
            )
        )
    if serving:
        p95 = (
            serving.get("hotswap", {}).get("latency_ms", {}).get("p95")
            if isinstance(serving.get("hotswap"), dict)
            else None
        )
        if p95:
            gates.append(
                Gate(
                    name="serving-p95-ms",
                    kind="max_value",
                    metric="latency_ms.p95",
                    # The committed p95 with generous CI-runner headroom,
                    # floored at the absolute 250 ms CI bound.
                    threshold=max(250.0, 25.0 * float(p95)),
                    baseline_file="BENCH_serving.json",
                    baseline_value=float(p95),
                    provenance=dict(serving["provenance"]),
                    description=(
                        "per-batch predict p95 under churn must stay within "
                        f"CI headroom of the committed {float(p95):.1f} ms"
                    ),
                )
            )
        gates.append(
            Gate(
                name="canary-rejections",
                kind="max_value",
                metric="canary_rejections",
                threshold=0.0,
                baseline_file="BENCH_serving.json",
                baseline_value=float(
                    serving.get("chaos", {}).get("canary_rejections", 0)
                    if isinstance(serving.get("chaos"), dict)
                    else 0
                ),
                provenance=dict(serving["provenance"]),
                description=(
                    "no swap candidate may fail the canary gate in a matrix "
                    "cell: a rejection means training degraded (non-finite "
                    "logits) on a schedule the baseline handled cleanly"
                ),
            )
        )
    return tuple(gates)


def _enforced(gate: Gate, cell: dict, result: dict) -> bool:
    """Do this gate's baseline preconditions hold for this cell?"""
    load = str(cell.get("load", "none"))
    if gate.name == "byte-identity":
        return int(result.get("verified_checkpoints", 0) or 0) > 0
    if gate.name == "incremental-speedup":
        # The committed speedup was measured on a steady schedule with no
        # serving load and a target pool >= the baseline's; tiny CI-scale
        # cells and hostile regimes record the ratio without enforcing it.
        return (
            str(cell.get("regime")) == "steady"
            and load == "none"
            and result.get("speedup") is not None
            and int(result.get("target_nodes", 0)) >= 1500
        )
    if gate.name == "prediction-consistency":
        return load != "none"
    if gate.name == "serving-p95-ms":
        return load != "none" and _metric(result, gate.metric) is not None
    if gate.name == "canary-rejections":
        # Only serving-load cells run a controller (and thus a canary).
        return load != "none" and _metric(result, gate.metric) is not None
    return False


def evaluate_cell_gates(
    cell: dict, result: dict, gates: tuple[Gate, ...]
) -> list[GateOutcome]:
    """Evaluate every gate against one cell's stored result.

    Each outcome reports whether the gate was *enforced* for this cell
    (baseline preconditions held) and whether it *passed*; unenforced gates
    still record the observed value so the per-cell trajectory is complete.
    """
    outcomes: list[GateOutcome] = []
    for gate in gates:
        observed = _metric(result, gate.metric)
        if observed is None:
            passed: bool | None = None
        elif gate.kind == "min_value":
            passed = observed >= gate.threshold
        else:
            passed = observed <= gate.threshold
        outcomes.append(
            GateOutcome(
                name=gate.name,
                enforced=_enforced(gate, cell, result) and passed is not None,
                passed=passed,
                observed=observed,
                threshold=gate.threshold,
                baseline_file=gate.baseline_file,
                baseline_revision=str(gate.provenance.get("git_revision", "unknown")),
            )
        )
    return outcomes
