"""Parallel, resumable experiment runner.

The runner decomposes the paper's tables into independent, hashable work
cells (:mod:`repro.runner.plan`), executes them serially or across a process
pool with deterministic seeding (:mod:`repro.runner.executor`), and caches
every completed cell in a JSON-lines artifact store keyed by a stable cell
hash (:mod:`repro.runner.cache`) so interrupted runs resume where they
stopped.  :mod:`repro.runner.cli` exposes the whole stack as
``python -m repro``.

The high-level facades
:func:`repro.evaluation.pipeline.run_ratio_sweep` and
:func:`repro.evaluation.pipeline.run_generalization_study` are thin wrappers
over this package, so library callers get the same numbers whichever entry
point they use.

Examples
--------
>>> from repro.evaluation import ExperimentConfig
>>> from repro.runner import plan_ratio_sweep
>>> plan = plan_ratio_sweep(ExperimentConfig(dataset="acm", ratios=(0.05,),
...                                          methods=("random-hg",)))
>>> len(plan)
2
"""

from repro.runner.cache import ArtifactStore
from repro.runner.executor import CellOutcome, execute_plan
from repro.runner.gates import (
    Gate,
    GateOutcome,
    derive_matrix_gates,
    evaluate_cell_gates,
    read_baseline,
)
from repro.runner.matrix import (
    MatrixCell,
    MatrixConfig,
    MatrixOutcome,
    MatrixPlan,
    consolidate,
    plan_matrix,
    run_matrix,
    run_matrix_cell,
)
from repro.runner.plan import (
    Cell,
    ExperimentPlan,
    GeneralizationConfig,
    StreamConfig,
    assemble_generalization_rows,
    plan_generalization,
    plan_ratio_sweep,
)

__all__ = [
    "ArtifactStore",
    "Cell",
    "CellOutcome",
    "ExperimentPlan",
    "Gate",
    "GateOutcome",
    "GeneralizationConfig",
    "MatrixCell",
    "MatrixConfig",
    "MatrixOutcome",
    "MatrixPlan",
    "StreamConfig",
    "assemble_generalization_rows",
    "consolidate",
    "derive_matrix_gates",
    "evaluate_cell_gates",
    "execute_plan",
    "plan_generalization",
    "plan_matrix",
    "plan_ratio_sweep",
    "read_baseline",
    "run_matrix",
    "run_matrix_cell",
]
