"""JSON-lines artifact store keyed by stable cell hashes.

Every completed cell is appended as one JSON line to
``<root>/artifacts.jsonl``: ``{"key": ..., "cell": ..., "result": ...,
"meta": ...}``.  Append-only storage makes interruption safe — a killed run
loses at most the line being written (truncated lines are skipped on load) —
and re-running the same plan against the same store skips every cell whose
:func:`~repro.runner.plan.Cell.key` is already present.  When a key appears
more than once (e.g. after a ``--force`` re-run) the **latest** line wins.

Examples
--------
>>> import tempfile
>>> store = ArtifactStore(tempfile.mkdtemp())
>>> record = store.put("abc123", {"kind": "evaluate"}, {"accuracy": 0.5}, elapsed_s=1.0)
>>> store.get("abc123")["result"]["accuracy"]
0.5
>>> ArtifactStore(store.root).completed_keys()  # survives re-opening
{'abc123'}
"""

from __future__ import annotations

import json
import time
from pathlib import Path

__all__ = ["ArtifactStore"]

#: bump when the record layout changes incompatibly
STORE_VERSION = 1

ARTIFACT_FILE = "artifacts.jsonl"


class ArtifactStore:
    """Resumable result store backed by one append-only JSONL file.

    Parameters
    ----------
    root:
        Directory holding ``artifacts.jsonl``; created on first write.

    Notes
    -----
    The executor performs all writes from the parent process (workers return
    results over the pool), so a single store never sees concurrent writers
    from one run.  Two *separate* runs appending to the same file are still
    safe on POSIX because each record is a single short ``write`` of one
    line.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._index: dict[str, dict[str, object]] = {}
        self._loaded = False

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """Location of the backing JSONL file."""
        return self.root / ARTIFACT_FILE

    def refresh(self) -> None:
        """(Re-)read the backing file into the in-memory index."""
        self._index = {}
        self._loaded = True
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated trailing line from an interrupted run
                if self._well_formed(record):
                    self._index[record["key"]] = record

    @staticmethod
    def _well_formed(record: object) -> bool:
        """Only index records the executor/report can actually consume.

        Hand-edited files, partial writes that still parse as JSON, and
        records from a future incompatible ``STORE_VERSION`` are treated as
        absent (the cell simply re-runs) instead of crashing resume/report
        with a ``KeyError`` later.
        """
        if not isinstance(record, dict):
            return False
        if not isinstance(record.get("key"), str):
            return False
        if not isinstance(record.get("cell"), dict) or not isinstance(
            record.get("result"), dict
        ):
            return False
        meta = record.get("meta", {})
        version = meta.get("version", STORE_VERSION) if isinstance(meta, dict) else None
        return isinstance(version, int) and version <= STORE_VERSION

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.refresh()

    def get(self, key: str) -> dict[str, object] | None:
        """Latest stored record for ``key``, or ``None``."""
        self._ensure_loaded()
        return self._index.get(key)

    def completed_keys(self) -> set[str]:
        """Keys of every cell with a stored result."""
        self._ensure_loaded()
        return set(self._index)

    def records(self) -> list[dict[str, object]]:
        """Latest record per key, in first-completion order."""
        self._ensure_loaded()
        return list(self._index.values())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._index)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def put(
        self,
        key: str,
        cell: dict[str, object],
        result: dict[str, object],
        *,
        elapsed_s: float = 0.0,
    ) -> dict[str, object]:
        """Append one completed cell and return the stored record.

        Parameters
        ----------
        key:
            The cell's stable hash (:meth:`repro.runner.plan.Cell.key`).
        cell:
            The cell's :meth:`~repro.runner.plan.Cell.to_dict` payload — kept
            alongside the result so reports can be rendered from the store
            alone.
        result:
            JSON-safe result payload
            (:meth:`~repro.evaluation.protocol.MethodEvaluation.to_dict`).
        elapsed_s:
            Wall-clock seconds the cell took (informational).
        """
        self._ensure_loaded()
        record = {
            "key": key,
            "cell": cell,
            "result": result,
            "meta": {
                "version": STORE_VERSION,
                "elapsed_s": round(float(elapsed_s), 6),
                "created_unix": round(time.time(), 3),
            },
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._index[key] = record
        return record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore(root={str(self.root)!r}, records={len(self)})"
