"""The condense → train → evaluate protocol of Section V-B.

Every accuracy number in the paper follows the same protocol: obtain a
condensed graph at ratio ``r``, train the test HGNN on the condensed data,
then evaluate the trained model on the *full* graph's test split.  This
module implements that protocol once, for both condensed-artefact flavours
(selection-based :class:`HeteroGraph` outputs and optimisation-based
:class:`CondensedFeatureSet` outputs), with repeated seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines.base import CondensedFeatureSet, GraphCondenser
from repro.evaluation.storage import storage_bytes
from repro.evaluation.timing import timed
from repro.hetero.graph import HeteroGraph
from repro.models.base import HGNNClassifier
from repro.utils.rng import spawn_rngs

__all__ = ["MethodEvaluation", "evaluate_condenser", "whole_graph_reference", "train_on_condensed"]

ModelFactory = Callable[[], HGNNClassifier]


@dataclass
class MethodEvaluation:
    """Aggregated outcome of repeated condense-train-evaluate trials."""

    method: str
    dataset: str
    ratio: float
    accuracies: list[float]
    condense_seconds: float
    train_seconds: float
    storage: int
    condensed_nodes: int
    details: dict[str, object] = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        """Mean test accuracy over trials."""
        return float(np.mean(self.accuracies)) if self.accuracies else 0.0

    @property
    def std_accuracy(self) -> float:
        """Standard deviation of the test accuracy over trials."""
        return float(np.std(self.accuracies)) if self.accuracies else 0.0

    def as_row(self) -> dict[str, object]:
        """Flatten into a report row."""
        return {
            "dataset": self.dataset,
            "method": self.method,
            "ratio": self.ratio,
            "accuracy_mean": round(100.0 * self.mean_accuracy, 2),
            "accuracy_std": round(100.0 * self.std_accuracy, 2),
            "condense_s": round(self.condense_seconds, 3),
            "train_s": round(self.train_seconds, 3),
            "storage_kb": round(self.storage / 1e3, 1),
            "condensed_nodes": self.condensed_nodes,
        }

    def to_dict(self) -> dict[str, object]:
        """Lossless JSON-safe representation (inverse of :meth:`from_dict`).

        Floats survive a JSON round-trip bit-for-bit (``json`` serialises via
        ``repr``), so an evaluation reloaded from the runner's artifact store
        renders byte-identical report rows.
        """
        return {
            "method": self.method,
            "dataset": self.dataset,
            "ratio": self.ratio,
            "accuracies": [float(a) for a in self.accuracies],
            "condense_seconds": self.condense_seconds,
            "train_seconds": self.train_seconds,
            "storage": self.storage,
            "condensed_nodes": self.condensed_nodes,
            "details": self.details,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "MethodEvaluation":
        """Rebuild an evaluation from :meth:`to_dict` output."""
        return cls(
            method=str(payload["method"]),
            dataset=str(payload["dataset"]),
            ratio=float(payload["ratio"]),  # type: ignore[arg-type]
            accuracies=[float(a) for a in payload["accuracies"]],  # type: ignore[union-attr]
            condense_seconds=float(payload["condense_seconds"]),  # type: ignore[arg-type]
            train_seconds=float(payload["train_seconds"]),  # type: ignore[arg-type]
            storage=int(payload["storage"]),  # type: ignore[call-overload]
            condensed_nodes=int(payload["condensed_nodes"]),  # type: ignore[call-overload]
            details=dict(payload.get("details") or {}),
        )


def train_on_condensed(
    condensed: HeteroGraph | CondensedFeatureSet,
    model_factory: ModelFactory,
    full_graph: HeteroGraph,
) -> tuple[HGNNClassifier, float]:
    """Train a fresh model on ``condensed`` and return (model, train seconds)."""
    model = model_factory()
    with timed() as clock:
        if isinstance(condensed, CondensedFeatureSet):
            model.fit_from_features(
                condensed.features, condensed.labels, condensed.num_classes
            )
        else:
            model.fit(condensed)
    del full_graph  # evaluation happens at the caller's discretion
    return model, clock[0]


def evaluate_condenser(
    graph: HeteroGraph,
    condenser: GraphCondenser,
    ratio: float,
    model_factory: ModelFactory,
    *,
    seeds: int = 3,
    base_seed: int = 0,
    dataset_name: str | None = None,
) -> MethodEvaluation:
    """Run the full protocol for one (dataset, method, ratio) cell.

    A condensed artefact is produced once per seed (condensation itself may
    be stochastic), a fresh model is trained on it, and accuracy is measured
    on the full graph's test split.
    """
    rngs = spawn_rngs(base_seed, seeds)
    accuracies: list[float] = []
    condense_total = 0.0
    train_total = 0.0
    storage = 0
    condensed_nodes = 0
    for rng in rngs:
        with timed() as condense_clock:
            condensed = condenser.condense(graph, ratio, seed=rng)
        condense_total += condense_clock[0]
        model, train_seconds = train_on_condensed(condensed, model_factory, graph)
        train_total += train_seconds
        accuracies.append(model.evaluate(graph))
        storage = storage_bytes(condensed)
        condensed_nodes = (
            condensed.total_nodes
            if isinstance(condensed, HeteroGraph)
            else condensed.num_nodes
        )
    return MethodEvaluation(
        method=condenser.name,
        dataset=dataset_name or str(graph.metadata.get("name", graph.schema.name)),
        ratio=ratio,
        accuracies=accuracies,
        condense_seconds=condense_total / max(seeds, 1),
        train_seconds=train_total / max(seeds, 1),
        storage=storage,
        condensed_nodes=condensed_nodes,
    )


def whole_graph_reference(
    graph: HeteroGraph,
    model_factory: ModelFactory,
    *,
    seeds: int = 3,
    base_seed: int = 0,
    dataset_name: str | None = None,
) -> MethodEvaluation:
    """Accuracy of the test model trained on the full (uncondensed) graph."""
    rngs = spawn_rngs(base_seed, seeds)
    accuracies: list[float] = []
    train_total = 0.0
    for index, _rng in enumerate(rngs):
        model = model_factory()
        with timed() as clock:
            model.fit(graph)
        train_total += clock[0]
        accuracies.append(model.evaluate(graph))
        del index
    return MethodEvaluation(
        method="Whole Dataset",
        dataset=dataset_name or str(graph.metadata.get("name", graph.schema.name)),
        ratio=1.0,
        accuracies=accuracies,
        condense_seconds=0.0,
        train_seconds=train_total / max(seeds, 1),
        storage=graph.storage_bytes(),
        condensed_nodes=graph.total_nodes,
    )
