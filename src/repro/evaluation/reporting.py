"""Plain-text table rendering for the benchmark harness.

All tables and figure series in the paper are re-generated as aligned text
tables (and optionally Markdown) so they can be diffed against
EXPERIMENTS.md without any plotting dependency.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_markdown_table",
    "write_report",
    "format_series",
    "SWEEP_COLUMNS",
    "TIMING_COLUMNS",
    "sweep_columns",
]

#: Column order of a sweep report row (``MethodEvaluation.as_row``).
SWEEP_COLUMNS = (
    "dataset",
    "method",
    "ratio",
    "accuracy_mean",
    "accuracy_std",
    "condense_s",
    "train_s",
    "storage_kb",
    "condensed_nodes",
)

#: The wall-clock columns of a sweep row.  Everything else is a pure function
#: of ``(dataset, cell hyper-parameters)`` and therefore reproduces exactly
#: across serial, parallel and resumed runs; these two are measurements.
TIMING_COLUMNS = ("condense_s", "train_s")


def sweep_columns(*, include_timings: bool = True) -> tuple[str, ...]:
    """Sweep report columns, optionally without the wall-clock ones.

    The runner CLI's ``--no-timings`` flag uses this to render reports whose
    bytes are identical between a parallel run, a serial run and a resumed
    run of the same plan.

    Examples
    --------
    >>> "condense_s" in sweep_columns()
    True
    >>> "condense_s" in sweep_columns(include_timings=False)
    False
    """
    if include_timings:
        return SWEEP_COLUMNS
    return tuple(col for col in SWEEP_COLUMNS if col not in TIMING_COLUMNS)


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render ``rows`` (dicts) as an aligned monospace table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    cells = [[_stringify(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
) -> str:
    """Render ``rows`` as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |", "| " + " | ".join("---" for _ in columns) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(col, "")) for col in columns) + " |")
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Iterable[object],
    series: Mapping[str, Sequence[float]],
    *,
    title: str | None = None,
) -> str:
    """Render figure data (one line per x value, one column per series)."""
    x_values = list(x_values)
    rows = []
    for index, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)


def write_report(text: str, path: str | Path) -> Path:
    """Write a rendered report to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    return path
