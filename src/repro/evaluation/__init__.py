"""Evaluation pipeline: the condense → train → test-on-full-graph protocol."""

from repro.evaluation.pipeline import (
    CONDENSER_NAMES,
    ExperimentConfig,
    make_condenser,
    make_model_factory,
    run_generalization_study,
    run_ratio_sweep,
)
from repro.evaluation.protocol import (
    MethodEvaluation,
    evaluate_condenser,
    train_on_condensed,
    whole_graph_reference,
)
from repro.evaluation.reporting import (
    SWEEP_COLUMNS,
    TIMING_COLUMNS,
    format_markdown_table,
    format_series,
    format_table,
    sweep_columns,
    write_report,
)
from repro.evaluation.storage import (
    storage_bytes,
    storage_megabytes,
    storage_reduction_percent,
)
from repro.evaluation.timing import Stopwatch, percentile, summarize_latencies, timed

__all__ = [
    "ExperimentConfig",
    "CONDENSER_NAMES",
    "make_condenser",
    "make_model_factory",
    "run_ratio_sweep",
    "run_generalization_study",
    "MethodEvaluation",
    "evaluate_condenser",
    "train_on_condensed",
    "whole_graph_reference",
    "format_table",
    "format_markdown_table",
    "format_series",
    "write_report",
    "SWEEP_COLUMNS",
    "TIMING_COLUMNS",
    "sweep_columns",
    "storage_bytes",
    "storage_megabytes",
    "storage_reduction_percent",
    "Stopwatch",
    "timed",
    "percentile",
    "summarize_latencies",
]
