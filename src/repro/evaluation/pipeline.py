"""High-level experiment driver used by the benchmark harness and examples.

Wraps the low-level protocol (:mod:`repro.evaluation.protocol`) with the
bookkeeping every table of the paper needs: dataset loading at a chosen
scale, instantiating condensers and evaluation models by name with
dataset-appropriate hyper-parameters, sweeping condensation ratios, and
collecting report rows.

Since the runner subsystem landed, :func:`run_ratio_sweep` and
:func:`run_generalization_study` are thin facades over
:mod:`repro.runner` — the same plans the ``python -m repro`` CLI executes —
gaining parallel workers and store-backed resumability while keeping their
historical signatures and serial result ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import registry
from repro.baselines import GraphCondenser
from repro.datasets.registry import DATASETS
from repro.evaluation.protocol import MethodEvaluation
from repro.hetero.graph import HeteroGraph
from repro.models import HGNNClassifier
from repro.utils.validation import check_max_hops

__all__ = [
    "ExperimentConfig",
    "make_condenser",
    "make_model_factory",
    "run_ratio_sweep",
    "run_generalization_study",
    "CONDENSER_NAMES",
]

#: Canonical condenser names, in the paper's comparison order.  The single
#: source of truth is :data:`repro.registry.condensers`; this tuple is kept
#: for backwards compatibility with older callers.
CONDENSER_NAMES = (
    "random-hg",
    "herding-hg",
    "k-center-hg",
    "coarsening-hg",
    "gcond",
    "hgcond",
    "freehgc",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one ratio-sweep experiment (a Table III-style block)."""

    dataset: str
    ratios: tuple[float, ...]
    methods: tuple[str, ...] = ("random-hg", "herding-hg", "hgcond", "freehgc")
    model: str = "sehgnn"
    scale: float = 0.35
    seeds: int = 2
    base_seed: int = 0
    hidden_dim: int = 32
    epochs: int = 80
    max_hops: int | None = None
    include_whole: bool = True
    fast_optimization: bool = True
    extra_model_kwargs: dict[str, object] = field(default_factory=dict)

    def resolved_max_hops(self) -> int:
        """Meta-path hop limit: explicit value or the dataset's paper default."""
        if self.max_hops is not None:
            return self.max_hops
        entry = DATASETS.get(self.dataset.lower())
        return min(entry.max_hops, 3) if entry is not None else 2


def make_condenser(
    name: str, *, max_hops: int = 2, fast_optimization: bool = True, **overrides: object
) -> GraphCondenser:
    """Instantiate a condenser (FreeHGC or baseline) with sensible defaults.

    Thin wrapper over :data:`repro.registry.condensers`; ``name`` may be any
    registered name or alias.  ``fast_optimization`` shrinks the nested
    loops of the optimisation-based baselines so benchmark runs finish
    quickly; the paper-scale loop sizes are used when it is False.
    """
    factory = registry.condensers.get(name)
    return factory(max_hops=max_hops, fast_optimization=fast_optimization, **overrides)


def make_model_factory(
    model: str,
    *,
    hidden_dim: int = 32,
    epochs: int = 80,
    max_hops: int = 2,
    seed: int = 0,
    **extra: object,
) -> Callable[[], HGNNClassifier]:
    """Return a zero-argument factory building the named evaluation HGNN.

    ``model`` may be any name or alias registered in
    :data:`repro.registry.models`.

    ``max_hops`` is honoured as given (it used to be silently clamped to 2).
    The supported range is ``1 <= max_hops <= 5``, matching the paper's
    per-dataset hop limits; the number of meta-paths grows quickly with the
    hop count but is bounded by the models' ``max_paths`` cap (16 by
    default), so hop counts above 2 trade training time for longer-range
    semantics rather than exploding memory.
    """
    model_cls = registry.models.get(model)
    max_hops = check_max_hops(max_hops)

    def factory() -> HGNNClassifier:
        return model_cls(
            hidden_dim=hidden_dim,
            epochs=epochs,
            max_hops=max_hops,
            seed=seed,
            **extra,
        )

    return factory


def run_ratio_sweep(
    config: ExperimentConfig,
    *,
    graph: HeteroGraph | None = None,
    workers: int = 1,
    store: object = None,
    force: bool = False,
) -> list[MethodEvaluation]:
    """Run every (method, ratio) cell of ``config`` and return all evaluations.

    Thin facade over the experiment runner: the config is expanded into
    independent cells (:func:`repro.runner.plan.plan_ratio_sweep`) which are
    executed serially or in parallel (:func:`repro.runner.executor.execute_plan`).

    Parameters
    ----------
    config:
        The sweep definition.
    graph:
        Pre-loaded graph override (skips dataset loading; incompatible with
        ``store`` and parallel workers).
    workers:
        Worker processes; ``1`` (default) keeps the historical serial,
        in-process behaviour.
    store:
        Optional :class:`~repro.runner.cache.ArtifactStore` (or directory
        path) — completed cells found in it are skipped, fresh ones appended.
    force:
        Re-run cells even when ``store`` already has their results.

    Returns
    -------
    list of MethodEvaluation
        One per (ratio, method) cell in ratio-major order, plus the
        whole-graph reference when ``config.include_whole`` is set — the
        exact order the pre-runner serial implementation produced.
    """
    from repro.runner.executor import execute_plan
    from repro.runner.plan import plan_ratio_sweep

    # With an injected graph the dataset string is a pure label (historical
    # behaviour) — don't require it to name a registered dataset.
    plan = plan_ratio_sweep(config, validate_dataset=graph is None)
    outcomes = execute_plan(plan, graph=graph, workers=workers, store=store, force=force)
    return [outcome.evaluation for outcome in outcomes]


def run_generalization_study(
    dataset: str,
    ratio: float,
    *,
    methods: Sequence[str] = ("herding-hg", "hgcond", "freehgc"),
    models: Sequence[str] = ("hgb", "hgt", "han", "sehgnn"),
    scale: float = 0.35,
    seeds: int = 1,
    base_seed: int = 0,
    hidden_dim: int = 32,
    epochs: int = 80,
    graph: HeteroGraph | None = None,
    workers: int = 1,
    store: object = None,
    force: bool = False,
) -> list[dict[str, object]]:
    """Table IV: evaluate every method's condensed graph on several HGNNs.

    Facade over the experiment runner
    (:func:`repro.runner.plan.plan_generalization` +
    :func:`repro.runner.executor.execute_plan`): each (method, model) pair is
    an independent cell, and the models of one method row share a single
    condensation per trial instead of re-condensing per model.  ``workers``,
    ``store`` and ``force`` behave as in :func:`run_ratio_sweep`.

    Returns one row per method with per-model accuracies, the condensed
    average and the whole-graph average.
    """
    from repro.runner.executor import execute_plan
    from repro.runner.plan import (
        GeneralizationConfig,
        assemble_generalization_rows,
        plan_generalization,
    )

    config = GeneralizationConfig(
        dataset=dataset,
        ratio=ratio,
        methods=tuple(methods),
        models=tuple(models),
        scale=scale,
        seeds=seeds,
        base_seed=base_seed,
        hidden_dim=hidden_dim,
        epochs=epochs,
    )
    plan = plan_generalization(config, validate_dataset=graph is None)
    outcomes = execute_plan(plan, graph=graph, workers=workers, store=store, force=force)
    evaluations = {key: outcome.evaluation for key, outcome in zip(plan.keys(), outcomes)}
    return assemble_generalization_rows(config, evaluations, plan=plan)
