"""High-level experiment driver used by the benchmark harness and examples.

Wraps the low-level protocol (:mod:`repro.evaluation.protocol`) with the
bookkeeping every table of the paper needs: dataset loading at a chosen
scale, instantiating condensers and evaluation models by name with
dataset-appropriate hyper-parameters, sweeping condensation ratios, and
collecting report rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import registry
from repro.baselines import GraphCondenser
from repro.datasets.registry import DATASETS, load_dataset
from repro.evaluation.protocol import (
    MethodEvaluation,
    evaluate_condenser,
    whole_graph_reference,
)
from repro.hetero.graph import HeteroGraph
from repro.models import HGNNClassifier

__all__ = [
    "ExperimentConfig",
    "make_condenser",
    "make_model_factory",
    "run_ratio_sweep",
    "run_generalization_study",
    "CONDENSER_NAMES",
]

#: Canonical condenser names, in the paper's comparison order.  The single
#: source of truth is :data:`repro.registry.condensers`; this tuple is kept
#: for backwards compatibility with older callers.
CONDENSER_NAMES = (
    "random-hg",
    "herding-hg",
    "k-center-hg",
    "coarsening-hg",
    "gcond",
    "hgcond",
    "freehgc",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one ratio-sweep experiment (a Table III-style block)."""

    dataset: str
    ratios: tuple[float, ...]
    methods: tuple[str, ...] = ("random-hg", "herding-hg", "hgcond", "freehgc")
    model: str = "sehgnn"
    scale: float = 0.35
    seeds: int = 2
    base_seed: int = 0
    hidden_dim: int = 32
    epochs: int = 80
    max_hops: int | None = None
    include_whole: bool = True
    fast_optimization: bool = True
    extra_model_kwargs: dict[str, object] = field(default_factory=dict)

    def resolved_max_hops(self) -> int:
        """Meta-path hop limit: explicit value or the dataset's paper default."""
        if self.max_hops is not None:
            return self.max_hops
        entry = DATASETS.get(self.dataset.lower())
        return min(entry.max_hops, 3) if entry is not None else 2


def make_condenser(
    name: str, *, max_hops: int = 2, fast_optimization: bool = True, **overrides: object
) -> GraphCondenser:
    """Instantiate a condenser (FreeHGC or baseline) with sensible defaults.

    Thin wrapper over :data:`repro.registry.condensers`; ``name`` may be any
    registered name or alias.  ``fast_optimization`` shrinks the nested
    loops of the optimisation-based baselines so benchmark runs finish
    quickly; the paper-scale loop sizes are used when it is False.
    """
    factory = registry.condensers.get(name)
    return factory(max_hops=max_hops, fast_optimization=fast_optimization, **overrides)


def make_model_factory(
    model: str,
    *,
    hidden_dim: int = 32,
    epochs: int = 80,
    max_hops: int = 2,
    seed: int = 0,
    **extra: object,
) -> Callable[[], HGNNClassifier]:
    """Return a zero-argument factory building the named evaluation HGNN.

    ``model`` may be any name or alias registered in
    :data:`repro.registry.models`.
    """
    model_cls = registry.models.get(model)

    def factory() -> HGNNClassifier:
        return model_cls(
            hidden_dim=hidden_dim,
            epochs=epochs,
            max_hops=min(max_hops, 2),
            seed=seed,
            **extra,
        )

    return factory


def run_ratio_sweep(
    config: ExperimentConfig, *, graph: HeteroGraph | None = None
) -> list[MethodEvaluation]:
    """Run every (method, ratio) cell of ``config`` and return all evaluations."""
    graph = graph if graph is not None else load_dataset(
        config.dataset, scale=config.scale, seed=config.base_seed
    )
    max_hops = config.resolved_max_hops()
    model_factory = make_model_factory(
        config.model,
        hidden_dim=config.hidden_dim,
        epochs=config.epochs,
        max_hops=max_hops,
        seed=config.base_seed,
        **config.extra_model_kwargs,
    )
    results: list[MethodEvaluation] = []
    for ratio in config.ratios:
        for method in config.methods:
            condenser = make_condenser(
                method, max_hops=max_hops, fast_optimization=config.fast_optimization
            )
            results.append(
                evaluate_condenser(
                    graph,
                    condenser,
                    ratio,
                    model_factory,
                    seeds=config.seeds,
                    base_seed=config.base_seed,
                    dataset_name=config.dataset,
                )
            )
    if config.include_whole:
        results.append(
            whole_graph_reference(
                graph,
                model_factory,
                seeds=config.seeds,
                base_seed=config.base_seed,
                dataset_name=config.dataset,
            )
        )
    return results


def run_generalization_study(
    dataset: str,
    ratio: float,
    *,
    methods: Sequence[str] = ("herding-hg", "hgcond", "freehgc"),
    models: Sequence[str] = ("hgb", "hgt", "han", "sehgnn"),
    scale: float = 0.35,
    seeds: int = 1,
    base_seed: int = 0,
    hidden_dim: int = 32,
    epochs: int = 80,
    graph: HeteroGraph | None = None,
) -> list[dict[str, object]]:
    """Table IV: evaluate every method's condensed graph on several HGNNs.

    Returns one row per method with per-model accuracies, the condensed
    average and the whole-graph average.
    """
    graph = graph if graph is not None else load_dataset(dataset, scale=scale, seed=base_seed)
    entry = DATASETS.get(dataset.lower())
    max_hops = min(entry.max_hops, 3) if entry is not None else 2

    whole_per_model: dict[str, float] = {}
    rows: list[dict[str, object]] = []
    for method in methods:
        condenser = make_condenser(method, max_hops=max_hops)
        row: dict[str, object] = {"dataset": dataset, "method": condenser.name, "ratio": ratio}
        per_model: list[float] = []
        for model in models:
            factory = make_model_factory(
                model, hidden_dim=hidden_dim, epochs=epochs, max_hops=max_hops, seed=base_seed
            )
            evaluation = evaluate_condenser(
                graph,
                condenser,
                ratio,
                factory,
                seeds=seeds,
                base_seed=base_seed,
                dataset_name=dataset,
            )
            accuracy = round(100.0 * evaluation.mean_accuracy, 2)
            row[model.upper()] = accuracy
            per_model.append(evaluation.mean_accuracy)
            if model not in whole_per_model:
                reference = whole_graph_reference(
                    graph, factory, seeds=seeds, base_seed=base_seed, dataset_name=dataset
                )
                whole_per_model[model] = reference.mean_accuracy
        row["Condensed Avg."] = round(100.0 * sum(per_model) / len(per_model), 2)
        row["Whole Avg."] = round(
            100.0 * sum(whole_per_model[m] for m in models) / len(models), 2
        )
        rows.append(row)
    return rows
