"""Storage accounting for Table VII (condensed vs. original graphs)."""

from __future__ import annotations

from repro.baselines.base import CondensedFeatureSet
from repro.hetero.graph import HeteroGraph

__all__ = ["storage_bytes", "storage_megabytes", "storage_reduction_percent"]


def storage_bytes(data: HeteroGraph | CondensedFeatureSet) -> int:
    """Approximate in-memory footprint of a condensed artefact."""
    if isinstance(data, HeteroGraph):
        return data.storage_bytes()
    if isinstance(data, CondensedFeatureSet):
        return data.storage_bytes()
    raise TypeError(f"unsupported condensed artefact type {type(data)!r}")


def storage_megabytes(data: HeteroGraph | CondensedFeatureSet) -> float:
    """Footprint in megabytes."""
    return storage_bytes(data) / 1e6


def storage_reduction_percent(
    original: HeteroGraph, condensed: HeteroGraph | CondensedFeatureSet
) -> float:
    """Percentage of storage saved by the condensed artefact.

    Parameters
    ----------
    original:
        The uncondensed graph.
    condensed:
        Any condensed artefact accepted by :func:`storage_bytes`.

    Returns
    -------
    float
        ``100 * (1 - condensed_bytes / original_bytes)`` — higher is better;
        ``0.0`` when the original graph is empty.

    Examples
    --------
    >>> import repro
    >>> graph = repro.registry.datasets.get("acm").loader(scale=0.1, seed=0)
    >>> condensed = repro.condense(graph, 0.2, method="random-hg", seed=0)
    >>> storage_reduction_percent(graph, condensed) > 50
    True
    """
    original_bytes = storage_bytes(original)
    if original_bytes == 0:
        return 0.0
    return 100.0 * (1.0 - storage_bytes(condensed) / original_bytes)
