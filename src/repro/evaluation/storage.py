"""Storage accounting for Table VII (condensed vs. original graphs)."""

from __future__ import annotations

from repro.baselines.base import CondensedFeatureSet
from repro.hetero.graph import HeteroGraph

__all__ = ["storage_bytes", "storage_megabytes", "storage_reduction_percent"]


def storage_bytes(data: HeteroGraph | CondensedFeatureSet) -> int:
    """Approximate in-memory footprint of a condensed artefact."""
    if isinstance(data, HeteroGraph):
        return data.storage_bytes()
    if isinstance(data, CondensedFeatureSet):
        return data.storage_bytes()
    raise TypeError(f"unsupported condensed artefact type {type(data)!r}")


def storage_megabytes(data: HeteroGraph | CondensedFeatureSet) -> float:
    """Footprint in megabytes."""
    return storage_bytes(data) / 1e6


def storage_reduction_percent(
    original: HeteroGraph, condensed: HeteroGraph | CondensedFeatureSet
) -> float:
    """Percentage of storage saved by the condensed artefact."""
    original_bytes = storage_bytes(original)
    if original_bytes == 0:
        return 0.0
    return 100.0 * (1.0 - storage_bytes(condensed) / original_bytes)
