"""Timing helpers for the efficiency experiments (Fig. 2b, Fig. 8, Table VII)
and the serving latency reports (``benchmarks/bench_serving.py``, the
``/stats`` endpoint of ``python -m repro serve``)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["Stopwatch", "timed", "percentile", "summarize_latencies"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Used by the figure benchmarks and by the runner CLI to time whole plan
    executions.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch.measure("step"):
    ...     _ = sum(range(10))
    >>> watch.get("step") > 0
    True
    >>> watch.get("missing")
    0.0
    """

    durations: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def get(self, name: str) -> float:
        """Accumulated seconds recorded under ``name`` (0.0 if absent)."""
        return self.durations.get(name, 0.0)


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (linear interpolation).

    Matches ``numpy.percentile(..., method="linear")`` exactly, so latency
    summaries are stable whichever implementation a report uses.  ``q`` is
    in percent (``50`` is the median).

    Examples
    --------
    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([5.0], 99)
    5.0
    >>> percentile([1.0, 2.0, 3.0, 4.0], 100)
    4.0
    """
    if len(samples) == 0:
        raise ValueError("percentile of an empty sample set is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(value) for value in samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def summarize_latencies(samples: Sequence[float]) -> dict[str, float]:
    """p50/p95/p99 + mean/min/max/count summary of latency ``samples``.

    The standard shape every serving report uses (the load generator, the
    ``/stats`` endpoint, the CI smoke gate).  Samples are in seconds; the
    summary keeps them in seconds — render ``* 1e3`` for milliseconds.

    Examples
    --------
    >>> summary = summarize_latencies([0.010, 0.020, 0.030, 0.040])
    >>> summary["count"], round(summary["p50"], 6)
    (4.0, 0.025)
    """
    if len(samples) == 0:
        return {
            "count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
    values = [float(value) for value in samples]
    return {
        "count": float(len(values)),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
    }


@contextmanager
def timed() -> Iterator[list[float]]:
    """Context manager yielding a single-element list holding elapsed seconds."""
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
