"""Timing helpers for the efficiency experiments (Fig. 2b, Fig. 8, Table VII)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock durations.

    Used by the figure benchmarks and by the runner CLI to time whole plan
    executions.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch.measure("step"):
    ...     _ = sum(range(10))
    >>> watch.get("step") > 0
    True
    >>> watch.get("missing")
    0.0
    """

    durations: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.durations[name] = self.durations.get(name, 0.0) + elapsed

    def get(self, name: str) -> float:
        """Accumulated seconds recorded under ``name`` (0.0 if absent)."""
        return self.durations.get(name, 0.0)


@contextmanager
def timed() -> Iterator[list[float]]:
    """Context manager yielding a single-element list holding elapsed seconds."""
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
