"""Build provenance: which commit produced this process's artifacts.

One helper, shared by the benchmark harness (``BENCH_*.json`` provenance
blocks) and the serving ``/metrics`` page (the ``repro_build_info`` gauge),
so every artifact a run leaves behind names the same revision string.
"""

from __future__ import annotations

import subprocess
from functools import lru_cache
from pathlib import Path

__all__ = ["git_revision"]


@lru_cache(maxsize=8)
def git_revision(root: str | None = None) -> str:
    """Current commit hash at ``root`` (default: this package's checkout).

    Returns ``"unknown"`` outside a git checkout or when git is missing —
    provenance is best-effort and must never fail the caller.  Cached: the
    revision cannot change within a process, and ``/metrics`` renders call
    this on every scrape.
    """
    cwd = Path(root) if root is not None else Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"
