"""Shared utilities: random-number handling, validation helpers, logging."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_matrix,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability_matrix",
]
