"""Library-wide logging configuration.

The library never configures the root logger; callers opt in through
:func:`enable_verbose_logging` (used by the example scripts and the benchmark
harness) while library modules simply request a child of the ``repro``
logger.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_verbose_logging"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(f"{_ROOT_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_verbose_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent)."""
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(levelname)s] %(name)s: %(message)s"))
        logger.addHandler(handler)
    return logger
