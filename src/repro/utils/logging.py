"""Library-wide logging configuration.

The library never configures the root logger; callers opt in through
:func:`enable_verbose_logging` (used by the example scripts and the benchmark
harness) while library modules simply request a child of the ``repro``
logger.

``enable_verbose_logging(json=True)`` switches the handler to one-JSON-object-
per-line output; when a tracer is installed (:mod:`repro.obs`) every record is
stamped with the active ``trace_id`` and innermost ``span_id``, so log lines
and trace spans of one run join on the same ids.
"""

from __future__ import annotations

import json as _json
import logging

__all__ = ["get_logger", "enable_verbose_logging", "JsonFormatter"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(f"{_ROOT_NAME}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


class JsonFormatter(logging.Formatter):
    """One JSON object per line, stamped with the active trace context.

    Keys are sorted and the payload is ASCII-safe, so downstream ``jq`` /
    log-shipping pipelines get a stable shape.  ``trace_id``/``span_id``
    appear only while a tracer is installed — plain runs stay noise-free.
    """

    def format(self, record: logging.LogRecord) -> str:
        obj: dict = {
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            obj["exc_info"] = self.formatException(record.exc_info)
        from repro.obs.propagate import current_context

        ctx = current_context()
        if ctx is not None:
            obj["trace_id"] = ctx.trace_id
            if ctx.parent_id is not None:
                obj["span_id"] = ctx.parent_id
        return _json.dumps(obj, sort_keys=True)


def enable_verbose_logging(
    level: int = logging.INFO, *, json: bool = False
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent).

    ``json=True`` uses :class:`JsonFormatter`; calling again with a
    different ``json`` flag re-formats the existing handler in place.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    handler = next(
        (h for h in logger.handlers if isinstance(h, logging.StreamHandler)), None
    )
    if handler is None:
        handler = logging.StreamHandler()
        logger.addHandler(handler)
    if json:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter("[%(levelname)s] %(name)s: %(message)s"))
    return logger
