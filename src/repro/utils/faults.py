"""Deterministic fault injection for tests and matrix cells.

Production fault tolerance is only as trustworthy as the faults it was
tested against, and "kill a worker by hand and eyeball the logs" does not
scale to a scenario matrix.  This module provides a tiny, deterministic
fault-injection layer: production code declares *sites* (named points where
a fault could strike) by calling :func:`fire`, and tests or matrix cells
*plan* which invocations of which sites actually fail.  With no injector
installed every site is a no-op costing one global read, so the hooks are
safe to leave in hot-ish control paths.

Wired sites
-----------
``wal.torn_tail``
    :meth:`repro.serving.replicated.wal.DeltaWAL.append` writes only a
    prefix of the framed record, fsyncs it, and raises
    :class:`InjectedFault` — exactly the on-disk state a ``kill -9`` mid
    ``write`` leaves behind.  Action key ``keep_bytes`` bounds the prefix.
``pool.worker_kill``
    :meth:`repro.serving.replicated.pool.WorkerPool.supervise` SIGKILLs one
    live worker (action key ``slot`` picks which; defaults to the lowest
    live slot) and lets its own respawn path recover it.
``coordinator.delay_ack``
    :meth:`repro.serving.replicated.coordinator.ReplicatedServer._fan_out`
    sleeps ``seconds`` before notifying workers, modelling a slow swap-ack
    round trip against the commit's ack deadline.
``hotswap.delay_publish``
    :meth:`repro.serving.hotswap.ServingController.apply_delta` sleeps
    ``seconds`` just before publishing the new session, widening the
    hot-swap window that concurrent readers race against.
``publish.corrupt_file``
    :func:`repro.serving.replicated.pool.publish_version` flips bytes in a
    freshly published file *after* its manifest digest was recorded — the
    on-disk shape of a partial write or bit rot.  Action keys: ``filename``
    (substring selecting the victim file, default ``logits.npy``),
    ``flip_at`` (byte offset, default 0).
``publish.truncate_manifest``
    :func:`repro.serving.replicated.pool.publish_version` truncates the
    just-written ``manifest.json`` to ``keep_bytes`` (default half), so
    verification sees an unparseable manifest rather than a clean one.
``hotswap.poison_commit``
    :meth:`repro.serving.hotswap.ServingController.apply_delta` raises
    :class:`InjectedFault` before touching any state — a delta whose commit
    deterministically crashes.  The replicated tier quarantines the WAL
    record to the dead-letter sidecar and rebuilds.
``canary.force_reject``
    :func:`repro.serving.canary.evaluate_candidate` records a forced-failure
    check, so canary rejection (and the coordinator's rollback path behind
    it) is drivable without actually degrading a model.
``pool.crash_loop``
    :meth:`repro.serving.replicated.pool.WorkerPool._spawn` launches an
    instantly-exiting process instead of a real worker — a worker that dies
    at boot, exercising the supervisor's per-slot crash-loop backoff.

Determinism
-----------
A plan fires on exact invocation counts (``at=``), on a period
(``every=``), or on a seeded coin flip (``probability=``).  All three are
deterministic functions of the injector's ``seed`` and the site's own
invocation counter — re-running the same code with the same seed replays
the same faults, which is what lets a matrix cell's result be cached and
compared.  Injection is per-process: spawned worker processes do not
inherit the parent's injector.

Examples
--------
>>> from repro.utils import faults
>>> injector = faults.FaultInjector(seed=7)
>>> _ = injector.plan("demo.site", at=(2,), note="boom")
>>> with faults.injected(injector):
...     [faults.fire("demo.site") for _ in range(3)]
[None, {'note': 'boom'}, None]
>>> faults.fire("demo.site") is None  # nothing installed any more
True
"""

from __future__ import annotations

import random
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultInjector",
    "install",
    "uninstall",
    "active",
    "fire",
    "injected",
]

#: sites currently wired into production code (documentation, not a gate —
#: tests may plan arbitrary site names of their own)
KNOWN_SITES = (
    "wal.torn_tail",
    "pool.worker_kill",
    "coordinator.delay_ack",
    "hotswap.delay_publish",
    "publish.corrupt_file",
    "publish.truncate_manifest",
    "hotswap.poison_commit",
    "canary.force_reject",
    "pool.crash_loop",
)


class InjectedFault(ReproError, RuntimeError):
    """Raised by a site whose planned fault simulates a crash."""


@dataclass
class FaultRule:
    """One planned fault: *when* a site fires and *what* it returns."""

    site: str
    action: dict
    at: frozenset = field(default_factory=frozenset)
    every: int = 0
    probability: float = 0.0
    limit: int = 0
    fired: int = 0
    _rng: random.Random | None = None

    def matches(self, invocation: int) -> bool:
        """Does this rule fire on the ``invocation``-th (1-based) call?"""
        if self.limit and self.fired >= self.limit:
            return False
        if self.at:
            return invocation in self.at
        if self.every:
            return invocation % self.every == 0
        if self.probability:
            assert self._rng is not None
            return self._rng.random() < self.probability
        return True  # unconditional: every invocation


class FaultInjector:
    """A seeded collection of :class:`FaultRule` s, one counter per site.

    Thread-safe: the serving tier fires sites from the event loop, swap
    worker threads and the supervisor concurrently.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._rules: dict[str, list[FaultRule]] = {}
        #: per-site invocation counts (every ``fire``, matched or not)
        self.invocations: dict[str, int] = {}
        #: per-site counts of invocations that returned an action
        self.fires: dict[str, int] = {}
        #: optional ``callable(site)`` invoked once per fire.  The in-process
        #: counters above are invisible outside this process; serving servers
        #: point the sink at their shared-metrics-board row
        #: (``SlotMetrics.observe_fault``) so multi-process chaos runs report
        #: fires per site in ``/metrics``.
        self.sink = None

    def plan(
        self,
        site: str,
        *,
        at: tuple = (),
        every: int = 0,
        probability: float = 0.0,
        limit: int = 0,
        **action: object,
    ) -> FaultRule:
        """Register a fault at ``site``; ``**action`` is what :meth:`fire` returns.

        Exactly one of ``at`` (1-based invocation numbers), ``every``
        (period) or ``probability`` (seeded coin flip) selects invocations;
        none of them means *every* invocation.  ``limit`` caps total fires.
        """
        given = sum([bool(at), bool(every), bool(probability > 0.0)])
        if given > 1:
            raise ValueError("plan() takes at most one of at=, every=, probability=")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        rule = FaultRule(
            site=str(site),
            action=dict(action),
            at=frozenset(int(i) for i in at),
            every=int(every),
            probability=float(probability),
            limit=int(limit),
        )
        if rule.probability:
            # Per-rule deterministic stream: seed x site x rule index.
            index = len(self._rules.get(rule.site, ()))
            rule._rng = random.Random(
                (self.seed << 32) ^ zlib.crc32(rule.site.encode("utf-8")) ^ index
            )
        with self._lock:
            self._rules.setdefault(rule.site, []).append(rule)
        return rule

    def fire(self, site: str) -> dict | None:
        """Advance ``site``'s counter; return the matching action, if any."""
        action = None
        with self._lock:
            count = self.invocations.get(site, 0) + 1
            self.invocations[site] = count
            for rule in self._rules.get(site, ()):
                if rule.matches(count):
                    rule.fired += 1
                    self.fires[site] = self.fires.get(site, 0) + 1
                    action = dict(rule.action)
                    break
        if action is not None and self.sink is not None:
            try:  # a broken sink must never turn a planned fault into a crash
                self.sink(site)
            except Exception:  # reprolint: disable=REP-E601 metrics sink is best-effort; the fault action must still fire
                pass
        return action

    @classmethod
    def from_specs(cls, specs, *, seed: int = 0) -> "FaultInjector":
        """Build an injector from JSON-safe plan specs.

        Each spec is ``{"site": ..., "at"/"every"/"probability"/"limit": ...,
        "action": {...}}`` — the picklable form the coordinator ships to
        spawned worker processes (injectors themselves are per-process and do
        not cross ``spawn``).
        """
        injector = cls(seed=seed)
        for spec in specs:
            spec = dict(spec)
            injector.plan(
                spec["site"],
                at=tuple(spec.get("at", ())),
                every=int(spec.get("every", 0)),
                probability=float(spec.get("probability", 0.0)),
                limit=int(spec.get("limit", 0)),
                **dict(spec.get("action", {})),
            )
        return injector

    @property
    def stats(self) -> dict[str, dict[str, int]]:
        """JSON-safe ``{"invocations": ..., "fires": ...}`` counters."""
        with self._lock:
            return {
                "invocations": dict(self.invocations),
                "fires": dict(self.fires),
            }


# --------------------------------------------------------------------------- #
# Process-global installation
# --------------------------------------------------------------------------- #
_ACTIVE: FaultInjector | None = None
_GUARD = threading.Lock()


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process's active injector (replacing any)."""
    global _ACTIVE
    with _GUARD:
        _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Deactivate fault injection; every site becomes a no-op again."""
    global _ACTIVE
    with _GUARD:
        _ACTIVE = None


def active() -> FaultInjector | None:
    """The installed injector, or ``None``."""
    return _ACTIVE


def fire(site: str) -> dict | None:
    """Production-side hook: the planned action for ``site``, or ``None``."""
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.fire(site)


@contextmanager
def injected(injector: FaultInjector):
    """``with``-scoped :func:`install` that always uninstalls on exit."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()
