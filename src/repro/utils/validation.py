"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_probability_matrix",
]


def check_fraction(value: float, name: str, *, inclusive_low: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1]`` (or ``[0, 1]``)."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is not negative."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Validate that all entries of ``matrix`` are probabilities."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.size and (matrix.min() < 0.0 or matrix.max() > 1.0):
        raise ValueError(f"{name} entries must lie in [0, 1]")
    return matrix
