"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "check_fraction",
    "check_positive",
    "check_non_negative",
    "check_probability_matrix",
    "check_max_hops",
]

#: The paper's per-dataset meta-path hop limits span 1 (MUTAG/AM) to 5 (IMDB).
MAX_HOPS_RANGE = (1, 5)


def check_max_hops(max_hops: int) -> int:
    """Validate a meta-path hop limit against the paper's supported range.

    Shared by the experiment planner (plan-time rejection, before any cell
    runs) and :func:`repro.evaluation.pipeline.make_model_factory` so the
    rule lives in exactly one place.  Raises
    :class:`~repro.errors.ConfigurationError` (a :class:`ValueError` and a
    :class:`~repro.errors.ReproError`).
    """
    low, high = MAX_HOPS_RANGE
    if not low <= max_hops <= high:
        raise ConfigurationError(
            f"max_hops must be in [{low}, {high}] (the paper's per-dataset "
            f"hop limits), got {max_hops}"
        )
    return int(max_hops)


def check_fraction(value: float, name: str, *, inclusive_low: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1]`` (or ``[0, 1]``)."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    if not (low_ok and value <= 1.0):
        bound = "[0, 1]" if inclusive_low else "(0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is not negative."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_probability_matrix(matrix: np.ndarray, name: str) -> np.ndarray:
    """Validate that all entries of ``matrix`` are probabilities."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.size and (matrix.min() < 0.0 or matrix.max() > 1.0):
        raise ValueError(f"{name} entries must lie in [0, 1]")
    return matrix
