"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  Funnelling that flexibility
through :func:`ensure_rng` keeps the rest of the code free of seed-handling
boilerplate and guarantees reproducibility when a seed is supplied.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "spawn_seed_ints"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for a nondeterministic generator, an ``int`` for a seeded
        generator, or an existing generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def spawn_seed_ints(seed: int | np.random.Generator | None, count: int) -> list[int]:
    """Derive ``count`` integer sub-seeds from a single seed.

    This is the seed-derivation half of :func:`spawn_rngs`: passing each
    returned integer to :func:`numpy.random.default_rng` yields exactly the
    generators that :func:`spawn_rngs` would return for the same arguments.
    The experiment runner uses the integers directly as stable per-trial cache
    keys (:mod:`repro.runner.executor`), which is what lets a parallel run
    reproduce the serial RNG streams bit-for-bit.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return [int(s) for s in root.integers(0, 2**63 - 1, size=count)]


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Used by repeated-trial experiment drivers so that each trial is
    reproducible yet statistically independent from the others.
    """
    return [np.random.default_rng(s) for s in spawn_seed_ints(seed, count)]
