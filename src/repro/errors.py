"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish schema problems from budget problems, etc.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "GraphConstructionError",
    "BudgetError",
    "CondensationError",
    "DatasetError",
    "ModelError",
]


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(ReproError):
    """A heterogeneous-graph schema is malformed or inconsistent."""


class GraphConstructionError(ReproError):
    """Graph data (adjacency, features, labels) violates the schema."""


class BudgetError(ReproError):
    """A condensation budget / ratio is infeasible for the given graph."""


class CondensationError(ReproError):
    """A condensation method failed to produce a valid condensed graph."""


class DatasetError(ReproError):
    """A dataset generator was configured inconsistently."""


class ModelError(ReproError):
    """A model was used before fitting or configured inconsistently."""
