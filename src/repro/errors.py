"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to distinguish schema problems from budget problems, etc.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "GraphConstructionError",
    "BudgetError",
    "CondensationError",
    "ConfigurationError",
    "DatasetError",
    "ModelError",
    "StateDictError",
    "ServingError",
    "IntegrityError",
    "CanaryRejectedError",
    "PoisonDeltaError",
    "WALError",
    "RegistryError",
    "LintError",
]


class ReproError(Exception):
    """Base class for every error raised by the library.

    Examples
    --------
    >>> import repro
    >>> try:
    ...     repro.condense("no-such-dataset", ratio=0.1)
    ... except repro.ReproError as exc:
    ...     print(type(exc).__name__)
    RegistryError
    """


class SchemaError(ReproError):
    """A heterogeneous-graph schema is malformed or inconsistent."""


class GraphConstructionError(ReproError):
    """Graph data (adjacency, features, labels) violates the schema."""


class BudgetError(ReproError):
    """A condensation budget / ratio is infeasible for the given graph."""


class CondensationError(ReproError):
    """A condensation method failed to produce a valid condensed graph."""


class ConfigurationError(ReproError, ValueError):
    """A configuration value is outside its supported range.

    Derives from :class:`ValueError` so callers validating hyper-parameters
    the plain-Python way keep working, while the CLI's ``except ReproError``
    handler still turns it into a clean exit.
    """


class DatasetError(ReproError):
    """A dataset generator was configured inconsistently."""


class ModelError(ReproError):
    """A model was used before fitting or configured inconsistently."""


class StateDictError(ModelError, KeyError, ValueError):
    """A parameter state dict does not match the module it is loaded into.

    Raised on missing keys, unexpected keys and shape mismatches.  Derives
    from both :class:`KeyError` and :class:`ValueError` so callers written
    against the original ``Module.load_state_dict`` (which raised those
    directly) keep working unchanged.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return Exception.__str__(self)


class ServingError(ReproError):
    """The online inference-serving layer was misused or fed a bad bundle."""


class IntegrityError(ServingError):
    """A published artifact failed its manifest digest verification.

    Raised when a version directory's ``manifest.json`` is missing,
    unparseable, or names a file whose SHA-256 digest no longer matches the
    bytes on disk.  Loaders catch this and fall back to the newest version
    that *does* verify rather than serving garbage.
    """


class CanaryRejectedError(ServingError):
    """A candidate model failed its canary evaluation and was rolled back.

    Carries the structured :attr:`report` (``CanaryReport.to_dict()``) so
    HTTP layers can answer the delta with a 422 that explains exactly which
    check failed.  The previous version keeps serving.
    """

    def __init__(self, message: str, report: dict | None = None) -> None:
        super().__init__(message)
        self.report = dict(report or {})


class PoisonDeltaError(ServingError):
    """A delta's commit raised and the record was quarantined.

    Carries the dead-letter :attr:`entry` (offset, exception fingerprint,
    payload summary) written to the WAL's ``.deadletter`` sidecar.  The
    coordinator rebuilds itself from the WAL — which now skips the poisoned
    record — so the previous version keeps serving.
    """

    def __init__(self, message: str, entry: dict | None = None) -> None:
        super().__init__(message)
        self.entry = dict(entry or {})


class WALError(ServingError):
    """The durable GraphDelta write-ahead log is unreadable or inconsistent.

    A *torn* trailing record (the process died mid-append) is not an error —
    recovery truncates it silently; :class:`WALError` means the log body
    itself is corrupt or was misused (foreign file, record after corruption,
    appending to an unrepaired log).
    """


class LintError(ReproError):
    """The ``reprolint`` static-analysis pass was misconfigured.

    Covers unknown rule ids on the command line, unreadable lint targets,
    and malformed baseline files — *not* findings, which are reported, not
    raised.
    """


class RegistryError(ReproError, KeyError, ValueError):
    """A registry lookup failed (unknown name, duplicate registration, ...).

    Derives from both :class:`KeyError` and :class:`ValueError` so that
    callers written against the pre-registry factories (``make_condenser``
    raised ``KeyError``, strategy validation raised ``ValueError``) keep
    working unchanged.
    """

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return Exception.__str__(self)
