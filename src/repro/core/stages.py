"""First-class condensation stages (the pluggable pieces of FreeHGC).

The paper's method is explicitly modular: a *target* stage condenses the
labelled node type, and an *other-type* stage condenses each father/leaf
type (Fig. 3).  Table VIII's ablation variants are exactly the cross
product of stage strategies, so this module turns each strategy into a
registered class:

========  =======================  =====================================
registry  name (aliases)           implementation
========  =======================  =====================================
target    ``criterion``            unified criterion, Algorithm 1
          (``unified``)
target    ``herding``              per-class herding on embeddings (#3)
other     ``nim`` (``ppr``,        neighbour-influence maximisation,
          ``influence``)           Eq. 10–13
other     ``ilm`` (``synthesis``)  information-loss-minimising synthesis,
                                   Eq. 14–16
other     ``herding``              herding on feature+degree embeddings
========  =======================  =====================================

Every stage consumes a shared :class:`~repro.core.context.CondensationContext`
so expensive meta-path products are computed once per ``condense()`` call no
matter how many stages need them.  Third-party strategies plug in by
registering a class with the same protocol in
:mod:`repro.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, runtime_checkable

import numpy as np

from repro import obs, registry
from repro.core.context import CondensationContext
from repro.core.criterion import TargetNodeSelector, TargetSelectionResult
from repro.core.neighbor_influence import NeighborInfluenceMaximizer
from repro.core.synthesis import InformationLossMinimizer, SyntheticLeafNodes
from repro.errors import CondensationError

__all__ = [
    "Providers",
    "StageResult",
    "TargetStage",
    "OtherTypeStage",
    "ConfigurableStage",
    "CriterionTargetStage",
    "HerdingTargetStage",
    "NeighborInfluenceStage",
    "SynthesisStage",
    "HerdingOtherStage",
]

#: Provider nodes for the synthesis stage: per father type, either the
#: original indices of *selected* father nodes or the synthesised father
#: hyper-nodes themselves (when ``father_strategy="ilm"``).
Providers = Mapping[str, "np.ndarray | SyntheticLeafNodes"]


@dataclass
class StageResult:
    """Outcome of condensing one non-target node type.

    Exactly one of ``selected`` (original node indices kept) or
    ``synthetic`` (synthesised hyper-nodes) is set.
    """

    node_type: str
    selected: np.ndarray | None = None
    synthetic: SyntheticLeafNodes | None = None

    def __post_init__(self) -> None:
        if (self.selected is None) == (self.synthetic is None):
            raise CondensationError(
                f"stage result for {self.node_type!r} must set exactly one of "
                "'selected' or 'synthetic'"
            )
        if self.selected is not None:
            self.selected = np.asarray(self.selected, dtype=np.int64)


@runtime_checkable
class TargetStage(Protocol):
    """Condenses the target (labelled) node type."""

    name: str

    def select_target(
        self, context: CondensationContext, budget: int
    ) -> TargetSelectionResult | np.ndarray:
        """Select ``budget`` target nodes; rich results carry diagnostics."""
        ...  # pragma: no cover - protocol


@runtime_checkable
class OtherTypeStage(Protocol):
    """Condenses one father or leaf node type."""

    name: str

    def condense_type(
        self,
        context: CondensationContext,
        node_type: str,
        budget: int,
        *,
        anchor: np.ndarray | None = None,
        providers: Providers | None = None,
    ) -> StageResult:
        """Condense ``node_type`` down to at most ``budget`` nodes."""
        ...  # pragma: no cover - protocol


class ConfigurableStage:
    """Mixin: build a stage from the condenser's flat option dict.

    ``consumes`` names the constructor keywords the stage understands;
    :meth:`from_options` filters the shared option dict down to them, so
    :class:`~repro.core.condenser.FreeHGC` can hand every stage the same
    option bag without knowing which stage needs what.
    """

    consumes: tuple[str, ...] = ()

    @classmethod
    def from_options(cls, options: Mapping[str, object]):
        return cls(**{key: options[key] for key in cls.consumes if key in options})


# ---------------------------------------------------------------------- #
# Target-type stages
# ---------------------------------------------------------------------- #
@registry.target_stages.register("criterion", aliases=("unified",))
class CriterionTargetStage(ConfigurableStage):
    """Unified data-selection criterion (Algorithm 1, Eq. 8–9)."""

    name = "criterion"
    consumes = ("use_receptive_field", "use_similarity")

    def __init__(self, *, use_receptive_field: bool = True, use_similarity: bool = True) -> None:
        self.use_receptive_field = use_receptive_field
        self.use_similarity = use_similarity

    @obs.traced("stage.criterion.select_target")
    def select_target(
        self, context: CondensationContext, budget: int
    ) -> TargetSelectionResult:
        selector = TargetNodeSelector(
            max_hops=context.max_hops,
            max_paths=context.max_paths,
            use_receptive_field=self.use_receptive_field,
            use_similarity=self.use_similarity,
        )
        return selector.select(context.graph, budget, context=context)


@registry.target_stages.register("herding")
class HerdingTargetStage(ConfigurableStage):
    """Per-class herding on meta-path embeddings (ablation Variant #3)."""

    name = "herding"

    @obs.traced("stage.herding.select_target")
    def select_target(self, context: CondensationContext, budget: int) -> np.ndarray:
        from repro.baselines.base import per_class_budgets
        from repro.baselines.herding import herding_select

        graph = context.graph
        embeddings = context.target_embeddings()
        pool = graph.splits.train
        labels = graph.labels[pool]
        chosen: list[np.ndarray] = []
        for cls, cls_budget in per_class_budgets(graph, budget).items():
            members = pool[labels == cls]
            if members.size == 0:
                continue
            local = herding_select(embeddings[members], cls_budget)
            chosen.append(members[local])
        if not chosen:
            raise CondensationError("herding target selection produced no nodes")
        return np.concatenate(chosen)


# ---------------------------------------------------------------------- #
# Father / leaf stages
# ---------------------------------------------------------------------- #
@registry.other_stages.register("nim", aliases=("ppr", "influence"))
class NeighborInfluenceStage(ConfigurableStage):
    """Neighbour-influence maximisation (Eq. 10–13)."""

    name = "nim"
    consumes = ("alpha", "importance", "iterations")

    def __init__(
        self, *, alpha: float = 0.15, importance: str = "ppr", iterations: int = 30
    ) -> None:
        self.alpha = alpha
        self.importance = importance
        self.iterations = iterations

    @obs.traced("stage.nim.condense_type")
    def condense_type(
        self,
        context: CondensationContext,
        node_type: str,
        budget: int,
        *,
        anchor: np.ndarray | None = None,
        providers: Providers | None = None,
    ) -> StageResult:
        maximizer = NeighborInfluenceMaximizer(
            max_hops=context.max_hops,
            max_paths=context.max_paths,
            alpha=self.alpha,
            iterations=self.iterations,
            importance=self.importance,
        )
        result = maximizer.select(
            context.graph, node_type, budget, anchor_nodes=anchor, context=context
        )
        return StageResult(node_type, selected=result.selected)


@registry.other_stages.register("ilm", aliases=("synthesis",))
class SynthesisStage(ConfigurableStage):
    """Information-loss-minimising hyper-node synthesis (Eq. 14–16)."""

    name = "ilm"
    consumes = ("aggregator", "add_reverse_edges")

    def __init__(self, *, aggregator: str = "mean", add_reverse_edges: bool = True) -> None:
        self.aggregator = aggregator
        self.add_reverse_edges = add_reverse_edges

    @obs.traced("stage.ilm.condense_type")
    def condense_type(
        self,
        context: CondensationContext,
        node_type: str,
        budget: int,
        *,
        anchor: np.ndarray | None = None,
        providers: Providers | None = None,
    ) -> StageResult:
        if not providers:
            raise CondensationError(
                f"synthesis of {node_type!r} requires provider nodes "
                "(selected or synthesised father types)"
            )
        synthesizer = InformationLossMinimizer(
            aggregator=self.aggregator, add_reverse_edges=self.add_reverse_edges
        )
        synthetic = synthesizer.synthesize(context.graph, node_type, budget, dict(providers))
        return StageResult(node_type, synthetic=synthetic)


@registry.other_stages.register("herding")
class HerdingOtherStage(ConfigurableStage):
    """Herding coreset over feature + normalised-degree embeddings."""

    name = "herding"

    @obs.traced("stage.herding.condense_type")
    def condense_type(
        self,
        context: CondensationContext,
        node_type: str,
        budget: int,
        *,
        anchor: np.ndarray | None = None,
        providers: Providers | None = None,
    ) -> StageResult:
        from repro.baselines.herding import herding_select

        selected = herding_select(context.other_type_embeddings(node_type), budget)
        return StageResult(node_type, selected=selected)
