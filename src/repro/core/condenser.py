"""The FreeHGC condenser — public facade of the paper's contribution.

Ties together the three stages of the method (Fig. 3):

1. **Condense the target type** with the unified data-selection criterion
   (receptive-field maximisation + meta-path similarity minimisation,
   Algorithm 1).
2. **Condense father types** with neighbour-influence maximisation
   (personalised PageRank over meta-path bipartite graphs, Eq. 10–13).
3. **Condense leaf types** with information-loss-minimising synthesis
   (mean-aggregated hyper-nodes with reverse-edge repair, Eq. 14–16).

The condensed pieces are assembled into a new
:class:`~repro.hetero.graph.HeteroGraph` that any HGNN can train on — the
whole procedure is training-free and model-agnostic.

Every stage is a pluggable strategy resolved through
:mod:`repro.registry` (``target_stages`` / ``other_stages``), so the
ablation study of Table VIII (Variants #1–#6) — and any third-party
strategy — can be driven from the same class.  All stages share one
:class:`~repro.core.context.CondensationContext`, so expensive meta-path
products are computed at most once per :meth:`FreeHGC.condense` call.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.baselines.base import GraphCondenser, per_type_budgets
from repro.core.context import CondensationContext
from repro.core.criterion import TargetSelectionResult
from repro.core.stages import OtherTypeStage, Providers, TargetStage
from repro.core.synthesis import SyntheticLeafNodes
from repro.errors import CondensationError
from repro.hetero.graph import HeteroGraph, NodeSplits
from repro.hetero.sparse import boolean_csr
from repro.registry import other_stages, target_stages

__all__ = ["FreeHGC", "assemble_condensed_graph", "run_condensation_pipeline"]


class FreeHGC(GraphCondenser):
    """Training-free heterogeneous graph condensation via data selection.

    Parameters
    ----------
    max_hops:
        Maximum meta-path length ``K`` (per-dataset hyper-parameter in the
        paper: 3 for ACM, 4 for DBLP, 5 for IMDB, 2 for Freebase, ...).
    max_paths:
        Cap on the number of enumerated meta-paths.
    use_receptive_field / use_similarity:
        Toggles for the two terms of the unified criterion (ablation
        Variants #1 and #2).
    target_strategy:
        ``"criterion"`` (default) or ``"herding"`` (Variant #3) — any name
        registered in :data:`repro.registry.target_stages`.
    father_strategy:
        ``"nim"`` (default), ``"ilm"`` or ``"herding"`` (Variants #4–#6) —
        any name registered in :data:`repro.registry.other_stages`.
    leaf_strategy:
        ``"ilm"`` (default), ``"nim"`` or ``"herding"`` (Variants #4–#6).
    importance:
        Node-importance function for NIM: ``"ppr"`` or ``"degree"``.
    alpha:
        PPR restart probability.
    anchor_on_selected:
        Personalise the PPR on the condensed target nodes (default) rather
        than on all target nodes.
    add_reverse_edges:
        Keep the Eq. 15 reverse edges when synthesising hyper-nodes.

    Examples
    --------
    >>> from repro.core import FreeHGC
    >>> from repro.datasets import load_acm
    >>> graph = load_acm(scale=0.1, seed=0)
    >>> condensed = FreeHGC(max_hops=2).condense(graph, ratio=0.2, seed=0)
    >>> condensed.total_nodes < graph.total_nodes
    True
    """

    name = "FreeHGC"

    def __init__(
        self,
        *,
        max_hops: int = 2,
        max_paths: int = 16,
        use_receptive_field: bool = True,
        use_similarity: bool = True,
        target_strategy: str = "criterion",
        father_strategy: str = "nim",
        leaf_strategy: str = "ilm",
        importance: str = "ppr",
        alpha: float = 0.15,
        anchor_on_selected: bool = True,
        add_reverse_edges: bool = True,
    ) -> None:
        # Registry resolution doubles as validation: unknown strategy names
        # raise RegistryError, which is a ValueError.
        self.target_strategy = target_stages.canonical(target_strategy)
        self.father_strategy = other_stages.canonical(father_strategy)
        self.leaf_strategy = other_stages.canonical(leaf_strategy)
        if importance not in ("ppr", "degree"):
            raise ValueError(f"importance must be 'ppr' or 'degree', got {importance!r}")
        self.max_hops = max_hops
        self.max_paths = max_paths
        self.use_receptive_field = use_receptive_field
        self.use_similarity = use_similarity
        self.importance = importance
        self.alpha = alpha
        self.anchor_on_selected = anchor_on_selected
        self.add_reverse_edges = add_reverse_edges
        #: diagnostics of the most recent :meth:`condense` call
        self.last_target_selection: TargetSelectionResult | None = None
        #: shared context of the most recent :meth:`condense` call
        self.last_context: CondensationContext | None = None

    # ------------------------------------------------------------------ #
    def stage_options(self) -> dict[str, object]:
        """The flat option bag every stage draws its constructor kwargs from."""
        return {
            "use_receptive_field": self.use_receptive_field,
            "use_similarity": self.use_similarity,
            "alpha": self.alpha,
            "importance": self.importance,
            "add_reverse_edges": self.add_reverse_edges,
        }

    def build_stages(self) -> tuple[TargetStage, OtherTypeStage, OtherTypeStage]:
        """Instantiate the configured (target, father, leaf) stage triple."""
        options = self.stage_options()
        target_stage = target_stages.get(self.target_strategy).from_options(options)
        father_stage = other_stages.get(self.father_strategy).from_options(options)
        leaf_stage = other_stages.get(self.leaf_strategy).from_options(options)
        return target_stage, father_stage, leaf_stage

    # ------------------------------------------------------------------ #
    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
        context: CondensationContext | None = None,
        stage_memo=None,
    ) -> HeteroGraph:
        """Condense ``graph`` down to ``ratio`` of its target nodes.

        ``stage_memo`` is an advanced hook used by the streaming subsystem
        (:class:`repro.streaming.IncrementalCondenser`): an object that may
        serve cached stage results when a stage's inputs are unchanged (see
        :func:`run_condensation_pipeline`).  With the default ``None`` every
        stage runs from scratch.
        """
        ratio = self._validate_ratio(graph, ratio)
        budgets = per_type_budgets(graph, ratio)
        if context is None:
            context = CondensationContext(
                graph, max_hops=self.max_hops, max_paths=self.max_paths
            )
        elif not context.matches(graph, max_hops=self.max_hops, max_paths=self.max_paths):
            raise CondensationError(
                "the supplied CondensationContext was built for a different "
                "graph or with different hop settings"
            )
        self.last_context = context
        # Reset before running: if the pipeline raises, diagnostics must not
        # expose a previous run's stale selection.
        self.last_target_selection = None
        condensed, outcome = run_condensation_pipeline(
            context,
            budgets,
            self.build_stages(),
            stage_memo=stage_memo,
            anchor_on_selected=self.anchor_on_selected,
            metadata={
                "method": self.name,
                "ratio": ratio,
                "structure": context.hierarchy.structure,
                "target_strategy": self.target_strategy,
                "father_strategy": self.father_strategy,
                "leaf_strategy": self.leaf_strategy,
            },
        )
        self.last_target_selection = (
            outcome if isinstance(outcome, TargetSelectionResult) else None
        )
        return condensed


@obs.traced("condense.pipeline")
def run_condensation_pipeline(
    context: CondensationContext,
    budgets: dict[str, int],
    stages: "tuple[TargetStage, OtherTypeStage, OtherTypeStage]",
    *,
    anchor_on_selected: bool = True,
    metadata: dict[str, object] | None = None,
    stage_memo=None,
) -> "tuple[HeteroGraph, TargetSelectionResult | np.ndarray]":
    """Run the three-stage condensation pipeline over ``context.graph``.

    This is the single implementation behind both :meth:`FreeHGC.condense`
    (``stage_memo=None``) and the streaming
    :class:`~repro.streaming.incremental.IncrementalCondenser`, which passes
    a *stage memo* — an object with ``select_target(stage, context, budget)``
    and ``condense_type(stage, context, role, node_type, budget, anchor=...,
    providers=...)`` that may serve a previously computed stage result when
    the stage's inputs are unchanged, and otherwise must delegate to the
    stage.  Because stages are deterministic functions of their inputs,
    memoized and fresh runs produce byte-identical condensed graphs.

    Returns the condensed graph and the raw target-stage outcome.
    """
    graph = context.graph
    hierarchy = context.hierarchy
    target = hierarchy.root
    target_stage, father_stage, leaf_stage = stages

    selected: dict[str, np.ndarray] = {}
    synthetic: dict[str, SyntheticLeafNodes] = {}

    # ------------------------------------------------------------------
    # Stage 1: target-type nodes.
    # ------------------------------------------------------------------
    with obs.span("condense.target_selection", stage=target_stage.name, budget=int(budgets[target])):
        if stage_memo is None:
            outcome = target_stage.select_target(context, budgets[target])
        else:
            outcome = stage_memo.select_target(target_stage, context, budgets[target])
    if isinstance(outcome, TargetSelectionResult):
        selected[target] = outcome.selected
    else:
        selected[target] = np.asarray(outcome, dtype=np.int64)
    if selected[target].size == 0:
        raise CondensationError("target selection produced no nodes")
    anchor = selected[target] if anchor_on_selected else None

    def condense_type(stage, role: str, node_type: str, providers: Providers):
        with obs.span(f"condense.{role}", stage=stage.name, node_type=node_type):
            if stage_memo is None:
                return stage.condense_type(
                    context,
                    node_type,
                    budgets[node_type],
                    anchor=anchor,
                    providers=providers,
                )
            return stage_memo.condense_type(
                stage,
                context,
                role,
                node_type,
                budgets[node_type],
                anchor=anchor,
                providers=providers,
            )

    # ------------------------------------------------------------------
    # Stage 2: father-type nodes.
    # ------------------------------------------------------------------
    target_providers: Providers = {target: selected[target]}
    for father in hierarchy.fathers:
        result = condense_type(father_stage, "father", father, target_providers)
        if result.synthetic is not None:
            synthetic[father] = result.synthetic
        else:
            selected[father] = result.selected

    # Leaf synthesis draws its providers from every condensed father —
    # selected or synthesised alike (synthesised father hyper-nodes seed
    # the synthesis through their merged member sets).
    father_providers: dict[str, np.ndarray | SyntheticLeafNodes] = {}
    for father in hierarchy.fathers:
        if father in selected:
            father_providers[father] = selected[father]
        else:
            father_providers[father] = synthetic[father]
    if not father_providers:
        father_providers = {target: selected[target]}

    # ------------------------------------------------------------------
    # Stage 3: leaf-type nodes.
    # ------------------------------------------------------------------
    for leaf in hierarchy.leaves:
        result = condense_type(leaf_stage, "leaf", leaf, father_providers)
        if result.synthetic is not None:
            synthetic[leaf] = result.synthetic
        else:
            selected[leaf] = result.selected

    with obs.span("condense.assemble"):
        condensed = assemble_condensed_graph(
            graph,
            selected,
            synthetic,
            metadata=metadata,
        )
    return condensed, outcome


# ---------------------------------------------------------------------- #
# Condensed graph assembly
# ---------------------------------------------------------------------- #
def assemble_condensed_graph(
    graph: HeteroGraph,
    selected: dict[str, np.ndarray],
    synthetic: dict[str, SyntheticLeafNodes],
    *,
    metadata: dict[str, object] | None = None,
) -> HeteroGraph:
    """Assemble selected nodes and synthesised hyper-nodes into a graph.

    Parameters
    ----------
    graph:
        The original graph (source of features, labels and adjacency).
    selected:
        Original node indices kept per node type.
    synthetic:
        Synthesised hyper-nodes per node type (types appearing here must not
        also appear in ``selected``).
    metadata:
        Extra metadata recorded on the condensed graph.
    """
    overlap = set(selected) & set(synthetic)
    if overlap:
        raise CondensationError(f"types {sorted(overlap)} are both selected and synthesised")
    target = graph.schema.target_type
    if target not in selected:
        raise CondensationError("the target type must be selected, not synthesised")

    kept: dict[str, np.ndarray] = {
        node_type: np.unique(np.asarray(indices, dtype=np.int64))
        for node_type, indices in selected.items()
    }
    mappings = {
        node_type: {int(old): new for new, old in enumerate(kept[node_type])}
        for node_type in kept
    }

    num_nodes: dict[str, int] = {}
    features: dict[str, np.ndarray] = {}
    for node_type in graph.schema.node_types:
        if node_type in kept:
            num_nodes[node_type] = int(kept[node_type].size)
            features[node_type] = graph.features[node_type][kept[node_type]]
        elif node_type in synthetic:
            num_nodes[node_type] = synthetic[node_type].num_nodes
            features[node_type] = synthetic[node_type].features
        else:
            raise CondensationError(f"node type {node_type!r} received no condensation strategy")

    adjacency: dict[str, sp.csr_matrix] = {}
    for name, matrix in graph.adjacency.items():
        rel = graph.schema.relation(name)
        shape = (num_nodes[rel.src], num_nodes[rel.dst])
        if rel.src in kept and rel.dst in kept:
            block = matrix[kept[rel.src], :][:, kept[rel.dst]]
            adjacency[name] = boolean_csr(block)
        elif rel.src in kept and rel.dst in synthetic:
            pairs = synthetic[rel.dst].edges.get(rel.src, [])
            if pairs:
                adjacency[name] = _edges_to_matrix(
                    pairs, mappings[rel.src], shape, transpose=False
                )
            else:
                # No recorded edges (rel.src was not a provider): recover the
                # connectivity by projecting the hyper-nodes' member sets
                # onto the original relation.
                adjacency[name] = _member_projection_matrix(
                    matrix, synthetic[rel.dst].members, kept[rel.src], synthetic_on_rows=False
                )
        elif rel.src in synthetic and rel.dst in kept:
            pairs = synthetic[rel.src].edges.get(rel.dst, [])
            if pairs:
                adjacency[name] = _edges_to_matrix(
                    pairs, mappings[rel.dst], shape, transpose=True
                )
            else:
                adjacency[name] = _member_projection_matrix(
                    matrix, synthetic[rel.src].members, kept[rel.dst], synthetic_on_rows=True
                )
        else:
            # Both endpoints synthesised (father_strategy="ilm" with leaf
            # synthesis): the leaf-side hyper-nodes record their father
            # connections directly in hyper-node index space.
            adjacency[name] = _hyper_pair_matrix(synthetic, rel.src, rel.dst, shape)

    labels = graph.labels[kept[target]]
    train_mask = np.zeros(graph.num_nodes[target], dtype=bool)
    val_mask = np.zeros_like(train_mask)
    test_mask = np.zeros_like(train_mask)
    train_mask[graph.splits.train] = True
    val_mask[graph.splits.val] = True
    test_mask[graph.splits.test] = True
    new_target = kept[target]
    splits = NodeSplits(
        train=np.flatnonzero(train_mask[new_target]),
        val=np.flatnonzero(val_mask[new_target]),
        test=np.flatnonzero(test_mask[new_target]),
    )

    merged_metadata = dict(graph.metadata)
    merged_metadata.update(metadata or {})
    return HeteroGraph(
        schema=graph.schema,
        num_nodes=num_nodes,
        adjacency=adjacency,
        features=features,
        labels=labels,
        splits=splits,
        metadata=merged_metadata,
    )


def _edges_to_matrix(
    edges: list[tuple[int, int]],
    selected_mapping: dict[int, int] | None,
    shape: tuple[int, int],
    *,
    transpose: bool,
) -> sp.csr_matrix:
    """Build a relation block from (father_index, hyper_index) edge pairs.

    ``selected_mapping`` maps original father indices to condensed ones;
    pass None when the father indices are already in condensed (hyper-node)
    space.  When ``transpose`` is False the father type is the source
    (rows); otherwise it is the destination (columns).  Edges whose father
    index cannot be mapped (or is out of range) are dropped.
    """
    rows: list[int] = []
    cols: list[int] = []
    father_bound = shape[1] if transpose else shape[0]
    for father_index, hyper_index in edges:
        if selected_mapping is None:
            mapped = int(father_index)
            if not 0 <= mapped < father_bound:
                continue
        else:
            mapped = selected_mapping.get(int(father_index))
            if mapped is None:
                continue
        if transpose:
            rows.append(int(hyper_index))
            cols.append(mapped)
        else:
            rows.append(mapped)
            cols.append(int(hyper_index))
    if not rows:
        return sp.csr_matrix(shape)
    data = np.ones(len(rows), dtype=np.float64)
    return sp.coo_matrix((data, (rows, cols)), shape=shape).tocsr()


def _member_projection_matrix(
    matrix: sp.spmatrix,
    members: list[np.ndarray],
    kept_indices: np.ndarray,
    *,
    synthetic_on_rows: bool,
) -> sp.csr_matrix:
    """Project an original relation onto (hyper-node, kept-node) space.

    A hyper-node connects to a kept node iff any of its original members
    did.  ``synthetic_on_rows`` says which side of ``matrix`` the
    synthesised type sits on (rows when it is the relation's source).
    """
    original_count = matrix.shape[0] if synthetic_on_rows else matrix.shape[1]
    sizes = [np.asarray(block).size for block in members]
    if sum(sizes) == 0:
        n_hyper = len(members)
        shape = (
            (n_hyper, kept_indices.size) if synthetic_on_rows else (kept_indices.size, n_hyper)
        )
        return sp.csr_matrix(shape)
    hyper_ids = np.concatenate(
        [np.full(size, index, dtype=np.int64) for index, size in enumerate(sizes)]
    )
    member_ids = np.concatenate([np.asarray(block, dtype=np.int64) for block in members])
    indicator = sp.coo_matrix(
        (np.ones(member_ids.size), (hyper_ids, member_ids)),
        shape=(len(members), original_count),
    ).tocsr()
    if synthetic_on_rows:
        block = indicator @ matrix.tocsr()[:, kept_indices]
    else:
        block = matrix.tocsr()[kept_indices, :] @ indicator.T
    return boolean_csr(block.tocsr())


def _hyper_pair_matrix(
    synthetic: dict[str, SyntheticLeafNodes],
    src: str,
    dst: str,
    shape: tuple[int, int],
) -> sp.csr_matrix:
    """Relation block between two synthesised types.

    The later-synthesised side (the leaf) records edges keyed by the other
    type; they are only usable when that other type was a *hyper* provider
    (``hyper_provider_types``), i.e. both endpoints are hyper-node indices.
    Original-index edges against a type that was nevertheless synthesised
    cannot be mapped and yield an empty block (the seed behaviour for
    synthetic–synthetic relations).
    """
    if src in synthetic[dst].hyper_provider_types:
        pairs, transpose = synthetic[dst].edges.get(src, []), False
    elif dst in synthetic[src].hyper_provider_types:
        pairs, transpose = synthetic[src].edges.get(dst, []), True
    else:
        return sp.csr_matrix(shape)
    return _edges_to_matrix(pairs, None, shape, transpose=transpose)
