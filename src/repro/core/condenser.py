"""The FreeHGC condenser — public facade of the paper's contribution.

Ties together the three stages of the method (Fig. 3):

1. **Condense the target type** with the unified data-selection criterion
   (receptive-field maximisation + meta-path similarity minimisation,
   Algorithm 1).
2. **Condense father types** with neighbour-influence maximisation
   (personalised PageRank over meta-path bipartite graphs, Eq. 10–13).
3. **Condense leaf types** with information-loss-minimising synthesis
   (mean-aggregated hyper-nodes with reverse-edge repair, Eq. 14–16).

The condensed pieces are assembled into a new
:class:`~repro.hetero.graph.HeteroGraph` that any HGNN can train on — the
whole procedure is training-free and model-agnostic.

Every stage is switchable to an alternative strategy so the ablation study
of Table VIII (Variants #1–#6) can be reproduced from the same class.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import GraphCondenser, per_type_budgets
from repro.baselines.embeddings import other_type_embeddings
from repro.baselines.herding import herding_select
from repro.core.criterion import TargetNodeSelector, TargetSelectionResult
from repro.core.neighbor_influence import NeighborInfluenceMaximizer
from repro.core.synthesis import InformationLossMinimizer, SyntheticLeafNodes
from repro.core.topology import classify_node_types
from repro.errors import CondensationError
from repro.hetero.graph import HeteroGraph, NodeSplits
from repro.hetero.sparse import boolean_csr

__all__ = ["FreeHGC", "assemble_condensed_graph"]

_TARGET_STRATEGIES = ("criterion", "herding")
_FATHER_STRATEGIES = ("nim", "ilm", "herding")
_LEAF_STRATEGIES = ("ilm", "nim", "herding")


class FreeHGC(GraphCondenser):
    """Training-free heterogeneous graph condensation via data selection.

    Parameters
    ----------
    max_hops:
        Maximum meta-path length ``K`` (per-dataset hyper-parameter in the
        paper: 3 for ACM, 4 for DBLP, 5 for IMDB, 2 for Freebase, ...).
    max_paths:
        Cap on the number of enumerated meta-paths.
    use_receptive_field / use_similarity:
        Toggles for the two terms of the unified criterion (ablation
        Variants #1 and #2).
    target_strategy:
        ``"criterion"`` (default) or ``"herding"`` (Variant #3).
    father_strategy:
        ``"nim"`` (default), ``"ilm"`` or ``"herding"`` (Variants #4–#6).
    leaf_strategy:
        ``"ilm"`` (default), ``"nim"`` or ``"herding"`` (Variants #4–#6).
    importance:
        Node-importance function for NIM: ``"ppr"`` or ``"degree"``.
    alpha:
        PPR restart probability.
    anchor_on_selected:
        Personalise the PPR on the condensed target nodes (default) rather
        than on all target nodes.
    add_reverse_edges:
        Keep the Eq. 15 reverse edges when synthesising hyper-nodes.
    """

    name = "FreeHGC"

    def __init__(
        self,
        *,
        max_hops: int = 2,
        max_paths: int = 16,
        use_receptive_field: bool = True,
        use_similarity: bool = True,
        target_strategy: str = "criterion",
        father_strategy: str = "nim",
        leaf_strategy: str = "ilm",
        importance: str = "ppr",
        alpha: float = 0.15,
        anchor_on_selected: bool = True,
        add_reverse_edges: bool = True,
    ) -> None:
        if target_strategy not in _TARGET_STRATEGIES:
            raise ValueError(f"target_strategy must be one of {_TARGET_STRATEGIES}")
        if father_strategy not in _FATHER_STRATEGIES:
            raise ValueError(f"father_strategy must be one of {_FATHER_STRATEGIES}")
        if leaf_strategy not in _LEAF_STRATEGIES:
            raise ValueError(f"leaf_strategy must be one of {_LEAF_STRATEGIES}")
        self.max_hops = max_hops
        self.max_paths = max_paths
        self.use_receptive_field = use_receptive_field
        self.use_similarity = use_similarity
        self.target_strategy = target_strategy
        self.father_strategy = father_strategy
        self.leaf_strategy = leaf_strategy
        self.importance = importance
        self.alpha = alpha
        self.anchor_on_selected = anchor_on_selected
        self.add_reverse_edges = add_reverse_edges
        #: diagnostics of the most recent :meth:`condense` call
        self.last_target_selection: TargetSelectionResult | None = None

    # ------------------------------------------------------------------ #
    def condense(
        self,
        graph: HeteroGraph,
        ratio: float,
        *,
        seed: int | np.random.Generator | None = None,
    ) -> HeteroGraph:
        ratio = self._validate_ratio(graph, ratio)
        budgets = per_type_budgets(graph, ratio)
        hierarchy = classify_node_types(graph.schema)
        target = hierarchy.root

        selected: dict[str, np.ndarray] = {}
        synthetic: dict[str, SyntheticLeafNodes] = {}

        # ------------------------------------------------------------------
        # Stage 1: target-type nodes.
        # ------------------------------------------------------------------
        selected[target] = self._condense_target(graph, budgets[target])
        anchor = selected[target] if self.anchor_on_selected else None

        # ------------------------------------------------------------------
        # Stage 2: father-type nodes.
        # ------------------------------------------------------------------
        for father in hierarchy.fathers:
            budget = budgets[father]
            if self.father_strategy == "nim":
                selected[father] = self._select_by_influence(graph, father, budget, anchor)
            elif self.father_strategy == "herding":
                selected[father] = herding_select(
                    other_type_embeddings(graph, father), budget
                )
            else:  # "ilm": synthesise fathers from the selected target nodes
                synthesizer = InformationLossMinimizer(
                    add_reverse_edges=self.add_reverse_edges
                )
                synthetic[father] = synthesizer.synthesize(
                    graph, father, budget, {target: selected[target]}
                )

        father_providers = {
            father: selected[father]
            for father in hierarchy.fathers
            if father in selected
        }
        if not father_providers:
            father_providers = {target: selected[target]}

        # ------------------------------------------------------------------
        # Stage 3: leaf-type nodes.
        # ------------------------------------------------------------------
        for leaf in hierarchy.leaves:
            budget = budgets[leaf]
            if self.leaf_strategy == "ilm":
                synthesizer = InformationLossMinimizer(
                    add_reverse_edges=self.add_reverse_edges
                )
                synthetic[leaf] = synthesizer.synthesize(
                    graph, leaf, budget, father_providers
                )
            elif self.leaf_strategy == "nim":
                selected[leaf] = self._select_by_influence(graph, leaf, budget, anchor)
            else:  # "herding"
                selected[leaf] = herding_select(other_type_embeddings(graph, leaf), budget)

        condensed = assemble_condensed_graph(
            graph,
            selected,
            synthetic,
            metadata={
                "method": self.name,
                "ratio": ratio,
                "structure": hierarchy.structure,
                "target_strategy": self.target_strategy,
                "father_strategy": self.father_strategy,
                "leaf_strategy": self.leaf_strategy,
            },
        )
        return condensed

    # ------------------------------------------------------------------ #
    # Stage helpers
    # ------------------------------------------------------------------ #
    def _condense_target(self, graph: HeteroGraph, budget: int) -> np.ndarray:
        if self.target_strategy == "herding":
            from repro.baselines.base import per_class_budgets
            from repro.baselines.embeddings import target_embeddings

            embeddings = target_embeddings(
                graph, max_hops=self.max_hops, max_paths=self.max_paths
            )
            pool = graph.splits.train
            labels = graph.labels[pool]
            chosen: list[np.ndarray] = []
            for cls, cls_budget in per_class_budgets(graph, budget).items():
                members = pool[labels == cls]
                if members.size == 0:
                    continue
                local = herding_select(embeddings[members], cls_budget)
                chosen.append(members[local])
            if not chosen:
                raise CondensationError("herding target selection produced no nodes")
            return np.concatenate(chosen)

        selector = TargetNodeSelector(
            max_hops=self.max_hops,
            max_paths=self.max_paths,
            use_receptive_field=self.use_receptive_field,
            use_similarity=self.use_similarity,
        )
        result = selector.select(graph, budget)
        self.last_target_selection = result
        if result.selected.size == 0:
            raise CondensationError("target selection produced no nodes")
        return result.selected

    def _select_by_influence(
        self,
        graph: HeteroGraph,
        node_type: str,
        budget: int,
        anchor: np.ndarray | None,
    ) -> np.ndarray:
        maximizer = NeighborInfluenceMaximizer(
            max_hops=self.max_hops,
            max_paths=self.max_paths,
            alpha=self.alpha,
            importance=self.importance,
        )
        result = maximizer.select(graph, node_type, budget, anchor_nodes=anchor)
        return result.selected


# ---------------------------------------------------------------------- #
# Condensed graph assembly
# ---------------------------------------------------------------------- #
def assemble_condensed_graph(
    graph: HeteroGraph,
    selected: dict[str, np.ndarray],
    synthetic: dict[str, SyntheticLeafNodes],
    *,
    metadata: dict[str, object] | None = None,
) -> HeteroGraph:
    """Assemble selected nodes and synthesised hyper-nodes into a graph.

    Parameters
    ----------
    graph:
        The original graph (source of features, labels and adjacency).
    selected:
        Original node indices kept per node type.
    synthetic:
        Synthesised hyper-nodes per node type (types appearing here must not
        also appear in ``selected``).
    metadata:
        Extra metadata recorded on the condensed graph.
    """
    overlap = set(selected) & set(synthetic)
    if overlap:
        raise CondensationError(f"types {sorted(overlap)} are both selected and synthesised")
    target = graph.schema.target_type
    if target not in selected:
        raise CondensationError("the target type must be selected, not synthesised")

    kept: dict[str, np.ndarray] = {
        node_type: np.unique(np.asarray(indices, dtype=np.int64))
        for node_type, indices in selected.items()
    }
    mappings = {
        node_type: {int(old): new for new, old in enumerate(kept[node_type])}
        for node_type in kept
    }

    num_nodes: dict[str, int] = {}
    features: dict[str, np.ndarray] = {}
    for node_type in graph.schema.node_types:
        if node_type in kept:
            num_nodes[node_type] = int(kept[node_type].size)
            features[node_type] = graph.features[node_type][kept[node_type]]
        elif node_type in synthetic:
            num_nodes[node_type] = synthetic[node_type].num_nodes
            features[node_type] = synthetic[node_type].features
        else:
            raise CondensationError(f"node type {node_type!r} received no condensation strategy")

    adjacency: dict[str, sp.csr_matrix] = {}
    for name, matrix in graph.adjacency.items():
        rel = graph.schema.relation(name)
        shape = (num_nodes[rel.src], num_nodes[rel.dst])
        if rel.src in kept and rel.dst in kept:
            block = matrix[kept[rel.src], :][:, kept[rel.dst]]
            adjacency[name] = boolean_csr(block)
        elif rel.src in kept and rel.dst in synthetic:
            adjacency[name] = _edges_to_matrix(
                synthetic[rel.dst].edges.get(rel.src, []), mappings[rel.src], shape, transpose=False
            )
        elif rel.src in synthetic and rel.dst in kept:
            adjacency[name] = _edges_to_matrix(
                synthetic[rel.src].edges.get(rel.dst, []), mappings[rel.dst], shape, transpose=True
            )
        else:
            # Both endpoints synthesised: connectivity between two synthetic
            # types is dropped (documented simplification; such relations are
            # leaf-leaf links that no meta-path from the target traverses
            # within the configured hop limit).
            adjacency[name] = sp.csr_matrix(shape)

    labels = graph.labels[kept[target]]
    train_mask = np.zeros(graph.num_nodes[target], dtype=bool)
    val_mask = np.zeros_like(train_mask)
    test_mask = np.zeros_like(train_mask)
    train_mask[graph.splits.train] = True
    val_mask[graph.splits.val] = True
    test_mask[graph.splits.test] = True
    new_target = kept[target]
    splits = NodeSplits(
        train=np.flatnonzero(train_mask[new_target]),
        val=np.flatnonzero(val_mask[new_target]),
        test=np.flatnonzero(test_mask[new_target]),
    )

    merged_metadata = dict(graph.metadata)
    merged_metadata.update(metadata or {})
    return HeteroGraph(
        schema=graph.schema,
        num_nodes=num_nodes,
        adjacency=adjacency,
        features=features,
        labels=labels,
        splits=splits,
        metadata=merged_metadata,
    )


def _edges_to_matrix(
    edges: list[tuple[int, int]],
    selected_mapping: dict[int, int],
    shape: tuple[int, int],
    *,
    transpose: bool,
) -> sp.csr_matrix:
    """Build a relation block from (father_original, hyper_index) edge pairs.

    When ``transpose`` is False the selected type is the source (rows);
    otherwise it is the destination (columns).
    """
    rows: list[int] = []
    cols: list[int] = []
    for father_original, hyper_index in edges:
        mapped = selected_mapping.get(int(father_original))
        if mapped is None:
            continue
        if transpose:
            rows.append(int(hyper_index))
            cols.append(mapped)
        else:
            rows.append(mapped)
            cols.append(int(hyper_index))
    if not rows:
        return sp.csr_matrix(shape)
    data = np.ones(len(rows), dtype=np.float64)
    return sp.coo_matrix((data, (rows, cols)), shape=shape).tocsr()
