"""Receptive-field expansion maximisation (Section IV-B, Eq. 2–3).

Every target node's *receptive field* under a meta-path is the set of
source-type nodes it reaches along that path.  FreeHGC selects the node set
``S`` whose union of receptive fields is largest — an instance of influence
maximisation, solved by the classic greedy algorithm with the (1 − 1/e)
approximation guarantee of Nemhauser et al. (the coverage function is
monotone submodular).

The greedy loop runs on the packed-bitset kernels of
:mod:`repro.core.coverage_kernels`: receptive fields are 64-bit word rows, a
marginal gain is a vectorized ``popcount(row & ~covered)``, and the lazy
(CELF-style) strategy re-evaluates stale priority entries in vectorized
batches rather than one heap pop at a time.  Selection output is identical
to the scalar CELF reference (`greedy_max_coverage_reference`) — highest
current gain first, ties broken by the lowest node id — which the property
suite verifies on random graphs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.coverage_kernels import (
    DEFAULT_BATCH_SIZE,
    CoverageResult,
    PackedAdjacency,
    greedy_max_coverage_decremental,
    greedy_max_coverage_packed,
    greedy_max_coverage_reference,
)

__all__ = [
    "CoverageResult",
    "PackedAdjacency",
    "greedy_max_coverage",
    "greedy_max_coverage_reference",
    "receptive_field_size",
]

#: strategies accepted by :func:`greedy_max_coverage`
_METHODS = ("auto", "decremental", "celf", "eager")

#: mean receptive-field size above which ``method="auto"`` prefers batched
#: CELF over the decremental kernel: the decremental update walks the full
#: inverted index of every newly covered column (amortized O(nnz)), which
#: loses to vectorized word-ops once rows are dense
_AUTO_DENSITY_CUTOFF = 48.0


def receptive_field_size(
    adjacency: sp.csr_matrix | PackedAdjacency, nodes: np.ndarray
) -> int:
    """|RF(S)|: number of distinct columns reachable from ``nodes``."""
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        return 0
    if isinstance(adjacency, PackedAdjacency):
        return adjacency.union_count(nodes)
    mask = np.zeros(adjacency.shape[1], dtype=bool)
    mask[adjacency[nodes].indices] = True
    return int(mask.sum())


def greedy_max_coverage(
    adjacency: sp.csr_matrix | PackedAdjacency,
    pool: np.ndarray,
    budget: int,
    *,
    lazy: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    method: str = "auto",
) -> CoverageResult:
    """Greedy maximisation of ``|RF(S)|`` over candidates in ``pool`` (Eq. 3).

    Every strategy returns the *identical* selection — highest current
    marginal gain per round, ties broken by the lowest node id — so the
    choice is purely about speed.

    Parameters
    ----------
    adjacency:
        Boolean meta-path adjacency (rows = target nodes, columns = source
        nodes reached by the meta-path), either a CSR matrix or an already
        packed :class:`~repro.core.coverage_kernels.PackedAdjacency`.
        Callers that run several selections on the same adjacency (e.g. the
        per-class loop of the unified criterion) should pack once — via
        :meth:`repro.core.context.CondensationContext.packed_receptive_field`
        — and pass the packed form, so the packed words and the inverted
        CSC index are shared across runs.
    pool:
        Candidate row indices (the class-restricted training pool
        ``V_train`` of Algorithm 1).
    budget:
        Maximum number of nodes to select (``B`` in Eq. 2).
    lazy:
        Back-compat switch: ``lazy=False`` forces the eager strategy that
        re-evaluates every remaining candidate each round.
    batch_size:
        Stale entries re-evaluated per vectorized pass by the batched CELF
        strategy.
    method:
        ``"auto"`` (default) picks the decremental inverted-index kernel
        for sparse receptive fields and batched CELF for dense ones (mean
        row size above ~48) or packed-only input; ``"decremental"``,
        ``"celf"`` and ``"eager"`` force a specific kernel.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if isinstance(adjacency, PackedAdjacency):
        packed, csr = adjacency, adjacency.source
    elif sp.issparse(adjacency):
        packed, csr = None, adjacency.tocsr()
    else:
        packed, csr = None, sp.csr_matrix(np.asarray(adjacency))

    if method == "auto":
        if not lazy:
            method = "eager"
        elif csr is None:
            method = "celf"
        else:
            mean_row_size = csr.nnz / max(csr.shape[0], 1)
            method = "decremental" if mean_row_size <= _AUTO_DENSITY_CUTOFF else "celf"
    if method == "decremental":
        if csr is None:
            raise ValueError(
                "the decremental strategy needs a CSR adjacency; this "
                "PackedAdjacency was built without one"
            )
        return greedy_max_coverage_decremental(csr, pool, budget)
    if packed is None:
        packed = PackedAdjacency.from_csr_cached(csr)
    return greedy_max_coverage_packed(
        packed, pool, budget, lazy=(method != "eager"), batch_size=batch_size
    )
