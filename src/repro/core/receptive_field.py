"""Receptive-field expansion maximisation (Section IV-B, Eq. 2–3).

Every target node's *receptive field* under a meta-path is the set of
source-type nodes it reaches along that path.  FreeHGC selects the node set
``S`` whose union of receptive fields is largest — an instance of influence
maximisation, solved by the classic greedy algorithm with the (1 − 1/e)
approximation guarantee of Nemhauser et al. (the coverage function is
monotone submodular).

A lazy-greedy (CELF-style) implementation is provided: because marginal
coverage gains can only shrink as the selected set grows, stale priority-
queue entries can be re-evaluated only when they reach the front, which cuts
the number of coverage evaluations dramatically on skewed graphs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = ["CoverageResult", "greedy_max_coverage", "receptive_field_size"]


@dataclass
class CoverageResult:
    """Outcome of one greedy max-coverage run."""

    selected: np.ndarray
    #: marginal coverage gain of each selected node, aligned with ``selected``
    gains: np.ndarray
    #: total number of distinct source nodes covered by the selection
    covered: int
    #: number of candidate evaluations performed (lazy-greedy bookkeeping)
    evaluations: int = field(default=0)


def receptive_field_size(adjacency: sp.csr_matrix, nodes: np.ndarray) -> int:
    """|RF(S)|: number of distinct columns reachable from ``nodes``."""
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size == 0:
        return 0
    covered: set[int] = set()
    for node in nodes:
        start, stop = adjacency.indptr[node], adjacency.indptr[node + 1]
        covered.update(adjacency.indices[start:stop].tolist())
    return len(covered)


def greedy_max_coverage(
    adjacency: sp.csr_matrix,
    pool: np.ndarray,
    budget: int,
    *,
    lazy: bool = True,
) -> CoverageResult:
    """Greedy maximisation of ``|RF(S)|`` over candidates in ``pool`` (Eq. 3).

    Parameters
    ----------
    adjacency:
        Boolean meta-path adjacency (rows = target nodes, columns = source
        nodes reached by the meta-path).
    pool:
        Candidate row indices (the class-restricted training pool
        ``V_train`` of Algorithm 1).
    budget:
        Maximum number of nodes to select (``B`` in Eq. 2).
    lazy:
        Use the CELF lazy-evaluation strategy (identical output, fewer
        evaluations).
    """
    pool = np.asarray(pool, dtype=np.int64)
    budget = int(min(budget, pool.size))
    if budget <= 0:
        return CoverageResult(np.empty(0, dtype=np.int64), np.empty(0), 0, 0)

    indptr, indices = adjacency.indptr, adjacency.indices
    covered = np.zeros(adjacency.shape[1], dtype=bool)
    selected: list[int] = []
    gains: list[float] = []
    evaluations = 0

    def marginal_gain(node: int) -> int:
        start, stop = indptr[node], indptr[node + 1]
        neighbors = indices[start:stop]
        return int(np.count_nonzero(~covered[neighbors]))

    if lazy:
        # CELF priority queue of (negative gain, staleness round, node).
        heap: list[tuple[float, int, int]] = []
        for node in pool:
            evaluations += 1
            heapq.heappush(heap, (-float(marginal_gain(int(node))), 0, int(node)))
        round_id = 0
        while heap and len(selected) < budget:
            neg_gain, stamp, node = heapq.heappop(heap)
            if stamp == round_id:
                gain = -neg_gain
                if gain <= 0 and selected:
                    break
                selected.append(node)
                gains.append(gain)
                start, stop = indptr[node], indptr[node + 1]
                covered[indices[start:stop]] = True
                round_id += 1
            else:
                evaluations += 1
                heapq.heappush(heap, (-float(marginal_gain(node)), round_id, node))
    else:
        remaining = set(int(n) for n in pool)
        while remaining and len(selected) < budget:
            best_node, best_gain = -1, -1
            for node in remaining:
                evaluations += 1
                gain = marginal_gain(node)
                if gain > best_gain:
                    best_node, best_gain = node, gain
            if best_node < 0 or (best_gain <= 0 and selected):
                break
            selected.append(best_node)
            gains.append(float(best_gain))
            remaining.discard(best_node)
            start, stop = indptr[best_node], indptr[best_node + 1]
            covered[indices[start:stop]] = True

    return CoverageResult(
        selected=np.asarray(selected, dtype=np.int64),
        gains=np.asarray(gains, dtype=np.float64),
        covered=int(covered.sum()),
        evaluations=evaluations,
    )
