"""General meta-path generation (Section IV-A, Eq. 1).

Instead of relying on expert-defined meta-paths (as HAN does), FreeHGC
enumerates *all* meta-paths up to a maximum hop count and composes their
adjacency matrices from the row-normalised per-hop adjacencies:

    Â_{o_t, ..., o_s} = Â_{o_t, o_1} Â_{o_1, o_2} ... Â_{o_{k-1}, o_s}     (Eq. 1)

This module provides the :class:`MetaPath` value object, enumeration over a
schema's type-connectivity graph, and adjacency composition for a concrete
:class:`~repro.hetero.graph.HeteroGraph`.  The same machinery feeds the HGNN
evaluation models (pre-computed meta-path features) and every stage of the
condensation algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import scipy.sparse as sp

from repro.errors import SchemaError
from repro.hetero.graph import HeteroGraph
from repro.hetero.schema import HeteroSchema
from repro.hetero.sparse import boolean_csr, row_normalize

__all__ = ["MetaPath", "enumerate_metapaths", "metapath_adjacency", "metapaths_to_type"]


@dataclass(frozen=True)
class MetaPath:
    """A meta-path as an ordered sequence of node types.

    ``node_types[0]`` is the anchor (usually the target type) and
    ``node_types[-1]`` is the source type whose information flows back to the
    anchor, matching the paper's ``o_t ← ... ← o_s`` notation.
    """

    node_types: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.node_types) < 2:
            raise SchemaError("a meta-path needs at least two node types")

    @property
    def length(self) -> int:
        """Number of hops."""
        return len(self.node_types) - 1

    @property
    def start(self) -> str:
        """Anchor node type."""
        return self.node_types[0]

    @property
    def end(self) -> str:
        """Source node type at the far end of the path."""
        return self.node_types[-1]

    @property
    def abbreviation(self) -> str:
        """Compact name built from type initials, e.g. ``PAP``."""
        return "".join(t[0].upper() for t in self.node_types)

    def __str__(self) -> str:
        return "-".join(self.node_types)

    def hops(self) -> list[tuple[str, str]]:
        """Consecutive ``(src, dst)`` type pairs along the path."""
        return list(zip(self.node_types[:-1], self.node_types[1:]))


def _type_neighbors(schema: HeteroSchema) -> dict[str, tuple[str, ...]]:
    """Undirected type-level connectivity derived from the schema relations."""
    return {node_type: schema.neighbor_types(node_type) for node_type in schema.node_types}


def enumerate_metapaths(
    schema: HeteroSchema,
    start_type: str,
    max_hops: int,
    *,
    allow_revisit: bool = True,
    max_paths: int = 64,
) -> list[MetaPath]:
    """Enumerate meta-paths anchored at ``start_type`` with up to ``max_hops`` hops.

    Parameters
    ----------
    schema:
        Schema whose type-connectivity graph is walked.
    start_type:
        Anchor node type (the paper anchors at the target type).
    max_hops:
        Maximum number of hops (``K`` in the paper; Table of hyper-parameters
        uses K between 1 and 5 depending on dataset).
    allow_revisit:
        Whether a path may revisit a node type (needed for the classic
        ``PAP`` / ``PSP`` patterns); self-loops within a single hop are
        allowed only when the schema declares a same-type relation.
    max_paths:
        Safety cap on the number of returned paths (schemas such as Freebase
        otherwise explode combinatorially).
    """
    if start_type not in schema.node_types:
        raise SchemaError(f"unknown start type {start_type!r}")
    if max_hops < 1:
        raise ValueError(f"max_hops must be >= 1, got {max_hops}")
    neighbors = _type_neighbors(schema)
    self_loop_types = {
        rel.src for rel in schema.relations if rel.src == rel.dst
    }

    results: list[MetaPath] = []
    frontier: list[tuple[str, ...]] = [(start_type,)]
    for _hop in range(max_hops):
        next_frontier: list[tuple[str, ...]] = []
        for path in frontier:
            current = path[-1]
            candidates = list(neighbors[current])
            if current in self_loop_types:
                candidates.append(current)
            for nxt in candidates:
                if not allow_revisit and nxt in path:
                    continue
                extended = path + (nxt,)
                results.append(MetaPath(extended))
                next_frontier.append(extended)
                if len(results) >= max_paths:
                    return results
        frontier = next_frontier
    return results


def metapaths_to_type(
    schema: HeteroSchema,
    start_type: str,
    end_type: str,
    max_hops: int,
    *,
    max_paths: int = 64,
) -> list[MetaPath]:
    """Meta-paths anchored at ``start_type`` that terminate at ``end_type``.

    Used by the neighbour-influence-maximisation stage, which scores the
    nodes of one *father* type through every meta-path that reaches it.
    """
    return [
        path
        for path in enumerate_metapaths(schema, start_type, max_hops, max_paths=max_paths)
        if path.end == end_type
    ]


def metapath_adjacency(
    graph: HeteroGraph, metapath: MetaPath, *, normalize: bool = True
) -> sp.csr_matrix:
    """Compose the adjacency matrix of ``metapath`` on ``graph`` (Eq. 1).

    Parameters
    ----------
    graph:
        Graph providing the per-relation adjacency matrices.
    metapath:
        The meta-path whose hops are composed.
    normalize:
        If True each hop is row-normalised (the form used for feature
        propagation); if False the boolean reachability product is returned
        (the form used for receptive fields and Jaccard similarity).
    """
    result: sp.csr_matrix | None = None
    for src, dst in metapath.hops():
        hop = graph.typed_adjacency(src, dst)
        hop = row_normalize(hop) if normalize else boolean_csr(hop)
        result = hop if result is None else (result @ hop).tocsr()
    assert result is not None
    if not normalize:
        # Canonicalise the product once at build time (sparse matmul output
        # has unsorted indices): the coverage kernels, the Jaccard products
        # and the streaming row-diff all want canonical CSR, and doing it
        # here means none of them pays for a private sorted copy.
        if not result.has_canonical_format:
            result.sum_duplicates()
        result = boolean_csr(result)
        result.has_canonical_format = True  # binarising preserved the pattern
    return result
