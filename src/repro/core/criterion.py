"""Unified data-selection criterion for target-type nodes (Algorithm 1).

Implements Eq. 8–9 of the paper: for every meta-path and every class, the
greedy receptive-field maximiser (Eq. 3) produces normalised coverage gains,
which are combined with the meta-path diversity bonus ``1 − Ĵ`` (Eq. 7) into
the unified score

    F(S) = R(S) / |R̂|  +  (1 − J(S)),                         (Eq. 8)

and the per-meta-path scores are aggregated so the final condensed target set
is the per-class top-k of the summed scores (Eq. 9).  The class proportions
of the original training pool are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import CondensationContext

from repro.baselines.base import per_class_budgets
from repro.core.metapaths import MetaPath, enumerate_metapaths, metapath_adjacency
from repro.core.receptive_field import greedy_max_coverage
from repro.core.similarity import metapath_similarity_scores
from repro.errors import BudgetError
from repro.hetero.graph import HeteroGraph

__all__ = ["TargetSelectionResult", "TargetNodeSelector"]


@dataclass
class TargetSelectionResult:
    """Outcome of the target-type selection stage."""

    selected: np.ndarray
    scores: np.ndarray
    per_class: dict[int, np.ndarray]
    metapaths: list[MetaPath]
    diagnostics: dict[str, object] = field(default_factory=dict)


class TargetNodeSelector:
    """Selects high-quality target-type nodes with the unified criterion.

    Parameters
    ----------
    max_hops:
        Maximum meta-path length ``K`` (paper hyper-parameter, per dataset).
    max_paths:
        Cap on the number of enumerated meta-paths.
    use_receptive_field:
        Toggle for the coverage term (ablation Variant #1 disables it).
    use_similarity:
        Toggle for the diversity term (ablation Variant #2 disables it).
    """

    def __init__(
        self,
        *,
        max_hops: int = 2,
        max_paths: int = 16,
        use_receptive_field: bool = True,
        use_similarity: bool = True,
    ) -> None:
        if not (use_receptive_field or use_similarity):
            raise ValueError("at least one criterion term must be enabled")
        self.max_hops = max_hops
        self.max_paths = max_paths
        self.use_receptive_field = use_receptive_field
        self.use_similarity = use_similarity

    # ------------------------------------------------------------------ #
    def select(
        self,
        graph: HeteroGraph,
        budget: int,
        *,
        pool: np.ndarray | None = None,
        context: "CondensationContext | None" = None,
    ) -> TargetSelectionResult:
        """Select ``budget`` target-type nodes from the training pool.

        When a :class:`~repro.core.context.CondensationContext` built for
        ``graph`` with matching hop settings is supplied, meta-path
        enumeration and adjacency composition are served from its cache
        instead of being recomputed.
        """
        if budget < 1:
            raise BudgetError(f"target budget must be >= 1, got {budget}")
        target = graph.schema.target_type
        pool = graph.splits.train if pool is None else np.asarray(pool, dtype=np.int64)
        if pool.size == 0:
            raise BudgetError("target selection pool is empty")

        use_context = context is not None and context.matches(
            graph, max_hops=self.max_hops, max_paths=self.max_paths
        )
        if use_context:
            metapaths = context.metapaths()
        else:
            metapaths = enumerate_metapaths(
                graph.schema, target, self.max_hops, max_paths=self.max_paths
            )
        if not metapaths:
            raise BudgetError("schema exposes no meta-paths from the target type")
        if use_context:
            adjacencies = [context.adjacency(path, normalize=False) for path in metapaths]
        else:
            adjacencies = [
                metapath_adjacency(graph, path, normalize=False) for path in metapaths
            ]

        # The streaming subsystem installs a selection memo on its shared
        # context; with no memo (the default) nothing below changes.
        memo = getattr(context, "selection_memo", None) if use_context else None
        similarity = self._similarity_matrix(metapaths, adjacencies, graph, memo=memo)
        class_budgets = per_class_budgets(graph, budget, pool=pool)
        labels = graph.labels
        # Hoisted out of the per-path loop: the class-restricted pools are
        # identical for every meta-path.
        class_pools = {cls: pool[labels[pool] == cls] for cls in class_budgets}

        n_target = graph.num_nodes[target]
        total_scores = np.zeros(n_target, dtype=np.float64)
        coverage_evaluations = 0

        for path_index, adjacency in enumerate(adjacencies):
            normalizer = float(max(adjacency.shape[1], 1))
            path_scores = np.zeros(n_target, dtype=np.float64)
            if self.use_receptive_field:
                if memo is not None:
                    # Memoized / warm-started per-path coverage scores:
                    # byte-identical to the loop below (reused vectors were
                    # produced by it; warm starts replay the exact kernel).
                    scores, evaluations = memo.path_coverage(
                        metapaths[path_index],
                        adjacency,
                        class_pools,
                        class_budgets,
                        normalizer,
                        n_target,
                    )
                    path_scores += scores
                    coverage_evaluations += evaluations
                else:
                    # The greedy kernels cache their index structures (packed
                    # words / inverted CSC) on the adjacency object, so the
                    # per-class runs — and, with a memoized context, repeated
                    # select() calls — build them once per meta-path.
                    for cls, cls_budget in class_budgets.items():
                        cls_pool = class_pools[cls]
                        if cls_pool.size == 0:
                            continue
                        result = greedy_max_coverage(adjacency, cls_pool, cls_budget)
                        coverage_evaluations += result.evaluations
                        if result.selected.size:
                            path_scores[result.selected] += result.gains / normalizer
            if self.use_similarity:
                diversity = 1.0 - similarity[:, path_index]
                path_scores[pool] += diversity[pool]
            total_scores += path_scores

        per_class: dict[int, np.ndarray] = {}
        selected_parts: list[np.ndarray] = []
        for cls, cls_budget in class_budgets.items():
            cls_pool = class_pools[cls]
            if cls_pool.size == 0:
                continue
            order = np.argsort(-total_scores[cls_pool], kind="stable")
            chosen = cls_pool[order[: min(cls_budget, cls_pool.size)]]
            per_class[cls] = chosen
            selected_parts.append(chosen)
        selected = (
            np.concatenate(selected_parts) if selected_parts else np.empty(0, dtype=np.int64)
        )
        return TargetSelectionResult(
            selected=selected,
            scores=total_scores,
            per_class=per_class,
            metapaths=metapaths,
            diagnostics={
                "num_metapaths": len(metapaths),
                "coverage_evaluations": coverage_evaluations,
                "class_budgets": class_budgets,
            },
        )

    # ------------------------------------------------------------------ #
    def _similarity_matrix(
        self,
        metapaths: list[MetaPath],
        adjacencies: list[sp.csr_matrix],
        graph: HeteroGraph,
        *,
        memo=None,
    ) -> np.ndarray:
        """Per-node Ĵ scores (Eq. 6), grouped by meta-path source type.

        Meta-paths are only comparable when they share the same source
        (end) type — PAP vs PFP in Fig. 4 both end at "paper".  Paths whose
        source type is unique in the enumeration have no redundancy and get
        similarity zero.  A selection memo (streaming) caches the scores of
        each group keyed by the identity of its adjacency objects, so a
        delta that rebuilds one group leaves the others untouched.
        """
        n_target = graph.num_nodes[graph.schema.target_type]
        similarity = np.zeros((n_target, len(metapaths)), dtype=np.float64)
        if not self.use_similarity:
            return similarity
        groups: dict[str, list[int]] = {}
        for index, path in enumerate(metapaths):
            groups.setdefault(path.end, []).append(index)
        for end_type, indices in groups.items():
            if len(indices) < 2:
                continue
            group_adjacencies = [adjacencies[i] for i in indices]
            if memo is not None:
                # Byte-identical to metapath_similarity_scores, with
                # unchanged pairs served from the memo.
                group_scores = memo.group_similarity(end_type, group_adjacencies)
            else:
                group_scores = metapath_similarity_scores(group_adjacencies)
            for column, index in enumerate(indices):
                similarity[:, index] = group_scores[:, column]
        return similarity
