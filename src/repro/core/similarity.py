"""Meta-path similarity minimisation (Section IV-B, Eq. 4–7).

Two meta-paths can expose a node to almost the same region of the graph
(Fig. 4: PAP vs PFP for a hub paper).  To reward nodes whose meta-paths look
at *different* regions, FreeHGC computes, for every node and every meta-path,
the average Jaccard similarity between the node's neighbour set under that
meta-path and its neighbour sets under all other related meta-paths
(Eq. 5–6); the selection criterion then adds the complement ``1 − Ĵ`` as a
diversity bonus (Eq. 8).

All pairwise intersections are computed with sparse matrix products, so the
cost is proportional to the number of stored meta-path edges rather than
``n²``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.hetero.sparse import boolean_csr

__all__ = ["pairwise_jaccard", "metapath_similarity_scores", "jaccard_between_sets"]


def jaccard_between_sets(first: set[int], second: set[int]) -> float:
    """Plain Jaccard index between two index sets (Eq. 4)."""
    union = len(first | second)
    if union == 0:
        return 1.0
    return len(first & second) / union


def _row_jaccard(
    a: sp.csr_matrix,
    b: sp.csr_matrix,
    size_a: np.ndarray,
    size_b: np.ndarray,
) -> np.ndarray:
    """Per-row Jaccard of two *already boolean* CSR matrices, sizes given."""
    intersection = np.asarray(a.multiply(b).sum(axis=1)).ravel()
    union = size_a + size_b - intersection
    result = np.ones(a.shape[0], dtype=np.float64)
    nonzero = union > 0
    result[nonzero] = intersection[nonzero] / union[nonzero]
    return result


def pairwise_jaccard(
    adjacency_a: sp.csr_matrix, adjacency_b: sp.csr_matrix
) -> np.ndarray:
    """Per-row Jaccard similarity between two boolean adjacency matrices.

    Row ``v`` of the result is ``J(N_a(v), N_b(v))`` (Eq. 5 evaluated per
    node).  Rows with an empty union are defined to have similarity 1, as in
    the paper ("we say J = 1 if the union is empty").  Inputs that are
    already boolean CSR are used as-is (``boolean_csr`` skips the copy).
    """
    if adjacency_a.shape != adjacency_b.shape:
        raise ValueError(
            f"adjacency shapes differ: {adjacency_a.shape} vs {adjacency_b.shape}"
        )
    a = boolean_csr(adjacency_a)
    b = boolean_csr(adjacency_b)
    size_a = np.asarray(a.sum(axis=1)).ravel()
    size_b = np.asarray(b.sum(axis=1)).ravel()
    return _row_jaccard(a, b, size_a, size_b)


def metapath_similarity_scores(adjacencies: list[sp.csr_matrix]) -> np.ndarray:
    """Per-node, per-meta-path normalised similarity ``Ĵ`` (Eq. 6).

    Each adjacency is binarised at most once (a no-op for the already
    boolean matrices the condensation context serves), row sizes are
    materialised once per meta-path, and every unordered pair is multiplied
    once — ``J`` is symmetric, so the pair's similarity feeds both columns.

    Parameters
    ----------
    adjacencies:
        Boolean meta-path adjacency matrices that share the same row space
        (the target-type nodes) and the same column space (the source type).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_target_nodes, num_metapaths)`` where entry
        ``(v, i)`` is the average Jaccard similarity of node ``v``'s
        neighbourhood under meta-path ``i`` against all other meta-paths.
        With a single meta-path the similarity is defined as zero (there is
        nothing to be redundant with).
    """
    num_paths = len(adjacencies)
    if num_paths == 0:
        raise ValueError("at least one meta-path adjacency is required")
    num_nodes = adjacencies[0].shape[0]
    if num_paths == 1:
        return np.zeros((num_nodes, 1), dtype=np.float64)
    for adjacency in adjacencies[1:]:
        if adjacency.shape != adjacencies[0].shape:
            raise ValueError(
                f"adjacency shapes differ: {adjacencies[0].shape} vs {adjacency.shape}"
            )
    boolean = [boolean_csr(adjacency) for adjacency in adjacencies]
    sizes = [np.asarray(matrix.sum(axis=1)).ravel() for matrix in boolean]
    scores = np.zeros((num_nodes, num_paths), dtype=np.float64)
    for i in range(num_paths):
        for j in range(i + 1, num_paths):
            similarity = _row_jaccard(boolean[i], boolean[j], sizes[i], sizes[j])
            scores[:, i] += similarity
            scores[:, j] += similarity
    scores /= num_paths - 1
    return scores
