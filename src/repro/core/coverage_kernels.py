"""Packed-bitset coverage kernels: the vectorized hot path of Eq. 2–3.

The greedy receptive-field maximiser evaluates marginal coverage gains
``|RF(S ∪ {v})| − |RF(S)|`` thousands of times per condensation run.  The
original implementation walked CSR index slices in Python, one candidate at
a time.  This module replaces that walk with a *packed-bitset* kernel:

* every row of a boolean meta-path adjacency is packed into 64-bit words
  (:class:`PackedAdjacency`), so a receptive field of 5 000 source nodes is
  79 machine words instead of a Python set;
* a marginal gain is ``popcount(row & ~covered)`` — a handful of vectorized
  word operations via :func:`bit_count`;
* whole candidate batches are evaluated in one NumPy call
  (:meth:`PackedAdjacency.marginal_gains`), which is what makes the batched
  CELF loop in :func:`greedy_max_coverage_packed` fast.

Selection semantics are *identical* to the classic lazy CELF heap: at every
round the candidate with the highest current marginal gain is selected, ties
broken by the lowest node id.  :func:`greedy_max_coverage_reference` keeps
the original heap/loop implementation as the correctness oracle — the
property suite and the ``perf-smoke`` CI gate assert that reference and
packed kernels return byte-identical selections.

All kernels treat a receptive field as a *set* of columns.  Equivalence
with the scalar reference therefore assumes canonical CSR input (sorted,
duplicate-free — everything this library produces): a duplicate stored
entry counts once here but is double-counted by the reference's
``count_nonzero`` walk.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.hetero.sparse import cached_csc, validate_attribute_caches

__all__ = [
    "CoverageResult",
    "PackedAdjacency",
    "bit_count",
    "greedy_max_coverage_decremental",
    "greedy_max_coverage_packed",
    "greedy_max_coverage_reference",
]

#: stale heap entries re-evaluated per vectorized pass of the batched CELF
DEFAULT_BATCH_SIZE = 64


# --------------------------------------------------------------------------- #
# Popcount
# --------------------------------------------------------------------------- #
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def _bit_count_lut(words: np.ndarray) -> np.ndarray:
    """Per-element population count via a byte lookup table.

    The NumPy < 2 fallback (no ``np.bitwise_count``).  Defined — and unit
    tested against :func:`bit_count` — on every NumPy version, so the
    fallback cannot rot between runs of the CI ``numpy<2`` matrix leg.
    """
    words = np.ascontiguousarray(words)
    as_bytes = words.view(np.uint8).reshape(words.shape + (words.dtype.itemsize,))
    return _POPCOUNT_TABLE[as_bytes].sum(axis=-1, dtype=np.uint8)


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def bit_count(words: np.ndarray) -> np.ndarray:
        """Per-element population count of an unsigned integer array."""
        return np.bitwise_count(words)

else:  # pragma: no cover - exercised on the NumPy < 2.0 CI leg
    bit_count = _bit_count_lut


@dataclass
class CoverageResult:
    """Outcome of one greedy max-coverage run."""

    selected: np.ndarray
    #: marginal coverage gain of each selected node, aligned with ``selected``
    gains: np.ndarray
    #: total number of distinct source nodes covered by the selection
    covered: int
    #: number of candidate evaluations performed (lazy-greedy bookkeeping)
    evaluations: int = field(default=0)


def _empty_result() -> CoverageResult:
    return CoverageResult(np.empty(0, dtype=np.int64), np.empty(0), 0, 0)


# --------------------------------------------------------------------------- #
# Packed representation
# --------------------------------------------------------------------------- #
class PackedAdjacency:
    """Bit-packed boolean adjacency: row ``i``'s receptive field as uint64 words.

    ``words`` has shape ``(n_rows, ceil(n_cols / 64))``; bit ``j`` of the
    row is bit ``j % 64`` of word ``j // 64`` (little-endian bit order, the
    layout ``np.packbits(..., bitorder="little")`` would produce).  Packing
    is itself vectorized — one ``np.bitwise_or.at`` scatter over the CSR
    index array — so building the packed form costs milliseconds even for
    graphs with millions of edges.
    """

    __slots__ = ("shape", "words", "source")

    def __init__(
        self,
        words: np.ndarray,
        shape: tuple[int, int],
        source: sp.csr_matrix | None = None,
    ) -> None:
        self.words = words
        self.shape = (int(shape[0]), int(shape[1]))
        #: the CSR matrix the bits were packed from (lets the decremental
        #: kernel reuse its inverted index); None for hand-built words
        self.source = source

    @classmethod
    def from_csr(cls, matrix: sp.spmatrix | np.ndarray) -> "PackedAdjacency":
        """Pack the sparsity pattern of ``matrix`` (stored entries = set bits)."""
        csr = matrix.tocsr() if sp.issparse(matrix) else sp.csr_matrix(np.asarray(matrix))
        n_rows, n_cols = csr.shape
        n_words = max(1, (n_cols + 63) // 64)
        words = np.zeros((n_rows, n_words), dtype=np.uint64)
        if csr.nnz:
            columns = csr.indices.astype(np.int64)
            rows = np.repeat(
                np.arange(n_rows, dtype=np.int64), np.diff(csr.indptr).astype(np.int64)
            )
            flat = rows * n_words + (columns >> 6)
            bits = np.uint64(1) << (columns & 63).astype(np.uint64)
            np.bitwise_or.at(words.reshape(-1), flat, bits)
        return cls(words, (n_rows, n_cols), source=csr)

    @classmethod
    def from_csr_cached(cls, csr: sp.csr_matrix) -> "PackedAdjacency":
        """Pack ``csr``, caching the result on the matrix object.

        Mirrors the ``_repro_csc`` inverted-index cache: consumers that
        share one adjacency (the per-class criterion runs, repeated
        selector calls on a memoized context) pack it exactly once, and
        packing is deferred until a strategy actually needs the words.
        The cache is fingerprint-guarded
        (:func:`repro.hetero.sparse.validate_attribute_caches`): structural
        in-place mutation of ``csr`` drops the stale packed words.
        """
        validate_attribute_caches(csr)
        cached = getattr(csr, "_repro_packed", None)
        if cached is None:
            cached = cls.from_csr(csr)
            try:
                csr._repro_packed = cached
            except AttributeError:  # pragma: no cover - csr accepts attrs
                pass
        return cached

    @property
    def num_words(self) -> int:
        """Words per packed row."""
        return self.words.shape[1]

    def empty_cover(self) -> np.ndarray:
        """A fresh all-zero cover vector (one uint64 word row)."""
        return np.zeros(self.num_words, dtype=np.uint64)

    def row_sizes(self, rows: np.ndarray) -> np.ndarray:
        """Receptive-field size of each row in ``rows``."""
        return bit_count(self.words[rows]).sum(axis=1, dtype=np.int64)

    def marginal_gains(self, rows: np.ndarray, covered: np.ndarray) -> np.ndarray:
        """``popcount(row & ~covered)`` for every row in ``rows`` at once."""
        free = self.words[rows] & ~covered
        return bit_count(free).sum(axis=1, dtype=np.int64)

    def add_to_cover(self, row: int, covered: np.ndarray) -> None:
        """OR row ``row`` into ``covered`` in place."""
        np.bitwise_or(covered, self.words[row], out=covered)

    def union_words(self, rows: np.ndarray) -> np.ndarray:
        """OR-reduction of the packed rows (the cover of the set ``rows``)."""
        return np.bitwise_or.reduce(self.words[rows], axis=0)

    def union_count(self, rows: np.ndarray) -> int:
        """|RF(rows)|: distinct columns covered by the union of ``rows``."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return 0
        return int(bit_count(self.union_words(rows)).sum(dtype=np.int64))

    def unpack(self) -> np.ndarray:
        """Dense boolean matrix (tests / debugging; allocates n_rows×n_cols)."""
        bits = np.unpackbits(
            np.ascontiguousarray(self.words).view(np.uint8), axis=1, bitorder="little"
        )
        return bits[:, : self.shape[1]].astype(bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedAdjacency(shape={self.shape}, words={self.words.shape})"


# --------------------------------------------------------------------------- #
# Batched-CELF greedy maximisation
# --------------------------------------------------------------------------- #
def greedy_max_coverage_packed(
    packed: PackedAdjacency,
    pool: np.ndarray,
    budget: int,
    *,
    lazy: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> CoverageResult:
    """Greedy max coverage over ``pool`` on a packed adjacency (Eq. 3).

    ``lazy=True`` runs the *batched CELF* strategy: cached gains are upper
    bounds (coverage is submodular, so gains only shrink), and each round the
    top-``batch_size`` stale bounds that could still beat the best fresh
    candidate are re-evaluated in one vectorized pass.  ``lazy=False``
    re-evaluates every remaining candidate each round (one vectorized pass
    per round).  Both return the exact greedy selection with deterministic
    tie-breaking (highest current gain, then lowest node id).
    """
    pool = np.asarray(pool, dtype=np.int64)
    budget = int(min(budget, pool.size))
    if budget <= 0:
        return _empty_result()

    # Candidates sorted ascending: np.argmax then breaks ties by lowest id.
    candidates = np.unique(pool)
    covered = packed.empty_cover()
    upper = packed.marginal_gains(candidates, covered)
    return _packed_greedy_loop(
        packed,
        candidates,
        upper,
        np.ones(candidates.size, dtype=bool),
        covered,
        [],
        [],
        budget,
        lazy=lazy,
        batch_size=batch_size,
        evaluations=int(candidates.size),
        round_id=0,
    )


def _packed_greedy_loop(
    packed: PackedAdjacency,
    candidates: np.ndarray,
    upper: np.ndarray,
    alive: np.ndarray,
    covered: np.ndarray,
    selected: list[int],
    gains: list[float],
    budget: int,
    *,
    lazy: bool,
    batch_size: int,
    evaluations: int,
    round_id: int,
) -> CoverageResult:
    """Run the (batched-CELF / eager) greedy loop from an arbitrary state.

    ``candidates`` must be sorted ascending (lowest-id tie-breaking relies
    on it) and ``upper`` must hold valid gain upper bounds — exact gains at
    ``round_id == 0``, any submodular upper bound afterwards.  The streaming
    warm start (:mod:`repro.streaming.warmstart`) resumes this loop after
    replaying a verified selection prefix; ``greedy_max_coverage_packed``
    calls it with the empty initial state.  Selections are byte-identical
    either way because the loop body is the single shared implementation.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    while len(selected) < budget and alive.any():
        if round_id == 0 or not lazy:
            # All bounds exact (round 0) or eagerly recomputed: plain argmax.
            remaining = np.flatnonzero(alive)
            if round_id > 0:
                upper[remaining] = packed.marginal_gains(candidates[remaining], covered)
                evaluations += int(remaining.size)
            best_pos = int(remaining[np.argmax(upper[remaining])])
            best_gain = int(upper[best_pos])
        else:
            # Batched CELF round: cached bounds are stale; re-evaluate the
            # top-``batch_size`` bounds per vectorized pass, pruning every
            # candidate whose bound can no longer win the round (lower than
            # the best fresh gain, or equal with a higher node id).
            best_pos, best_gain = -1, -1
            stale = np.flatnonzero(alive)
            while stale.size:
                bounds = upper[stale]
                if best_pos >= 0:
                    possible = (bounds > best_gain) | (
                        (bounds == best_gain) & (stale < best_pos)
                    )
                    stale = stale[possible]
                    bounds = bounds[possible]
                    if stale.size == 0:
                        break
                if stale.size > batch_size:
                    top = np.argpartition(-bounds, batch_size - 1)[:batch_size]
                    batch = stale[top]
                    rest = np.ones(stale.size, dtype=bool)
                    rest[top] = False
                    stale = stale[rest]
                else:
                    batch, stale = stale, stale[:0]
                fresh_gains = packed.marginal_gains(candidates[batch], covered)
                upper[batch] = fresh_gains
                evaluations += int(batch.size)
                batch_best = int(fresh_gains.max())
                if batch_best > best_gain:
                    best_gain = batch_best
                    best_pos = int(batch[fresh_gains == batch_best].min())
                elif batch_best == best_gain:
                    tied = int(batch[fresh_gains == batch_best].min())
                    best_pos = min(best_pos, tied)

        if best_pos < 0 or (best_gain <= 0 and selected):
            break
        node = int(candidates[best_pos])
        selected.append(node)
        gains.append(float(best_gain))
        packed.add_to_cover(node, covered)
        alive[best_pos] = False
        round_id += 1

    return CoverageResult(
        selected=np.asarray(selected, dtype=np.int64),
        gains=np.asarray(gains, dtype=np.float64),
        covered=int(bit_count(covered).sum(dtype=np.int64)),
        evaluations=evaluations,
    )


# --------------------------------------------------------------------------- #
# Decremental exact greedy (inverted-index kernel)
# --------------------------------------------------------------------------- #
def greedy_max_coverage_decremental(
    adjacency: sp.csr_matrix,
    pool: np.ndarray,
    budget: int,
) -> CoverageResult:
    """Exact greedy max coverage with decrementally maintained gains.

    Instead of re-evaluating stale gain bounds (CELF), this kernel keeps
    every candidate's marginal gain *exact* at all times: when a node is
    selected, each newly covered column looks up the rows that contain it
    through an inverted column→row index (the CSC form of the adjacency)
    and those rows' gains are decremented with one ``np.bincount``.  A
    (row, column) pair is touched at most once over the entire run — the
    column is covered exactly once — so gain maintenance is amortized
    ``O(nnz)`` and each round reduces to a single ``argmax``.  This is the
    fastest strategy for the condensation workload (large pools, small
    budgets) and returns the identical selection: highest current gain,
    ties broken by the lowest node id.

    The CSC index is cached on the adjacency object (attribute
    ``_repro_csc``), so per-class greedy runs over the same meta-path
    adjacency build it once.

    Like the packed kernels, duplicate column entries count once (set
    semantics).  Matrices produced by this library are always canonical;
    a non-canonical input is canonicalised on a private copy (the caller's
    matrix is never mutated), at the cost of the CSC cache.
    """
    pool = np.asarray(pool, dtype=np.int64)
    budget = int(min(budget, pool.size))
    if budget <= 0:
        return _empty_result()

    n_rows, n_cols = adjacency.shape
    validate_attribute_caches(adjacency)
    if not adjacency.has_canonical_format:
        # Duplicate column entries would double-count gains.  Canonicalise
        # a private copy (never the caller's matrix) and cache it on the
        # input, so e.g. unsorted matmul products pay the sort once.
        canonical = getattr(adjacency, "_repro_canonical", None)
        if canonical is None:
            canonical = adjacency.copy()
            canonical.sum_duplicates()
            try:
                adjacency._repro_canonical = canonical
            except AttributeError:  # pragma: no cover - csr accepts attrs
                pass
        adjacency = canonical
    csc = cached_csc(adjacency)
    if pool.size > 1 and bool(np.all(pool[1:] > pool[:-1])):
        candidates = pool  # already sorted and duplicate-free
    else:
        candidates = np.unique(pool)
    # Exact initial gains of every candidate: its receptive-field size.
    # Selected / non-candidate entries are parked at -1, so the per-round
    # argmax needs no mask; first-max ties resolve to the lowest node id
    # because ``candidates`` is sorted ascending.
    cand_gain = np.diff(adjacency.indptr).astype(np.int64)[candidates]
    # Non-candidate rows map to a spill bin (index ``candidates.size``) so
    # the per-round bincount needs no filtering pass.
    position_of_row = np.full(n_rows, candidates.size, dtype=np.int64)
    position_of_row[candidates] = np.arange(candidates.size, dtype=np.int64)
    evaluations = int(candidates.size)
    n_alive = int(candidates.size)
    covered_cols = np.zeros(n_cols, dtype=bool)
    covered_count = 0
    selected: list[int] = []
    gains: list[float] = []

    indptr, indices = adjacency.indptr, adjacency.indices
    col_indptr = csc.indptr.astype(np.int64)
    col_rows = csc.indices

    while len(selected) < budget and n_alive:
        best_pos = int(np.argmax(cand_gain))
        best_gain = int(cand_gain[best_pos])
        if best_gain <= 0 and selected:
            break
        node = int(candidates[best_pos])
        selected.append(node)
        gains.append(float(best_gain))
        cand_gain[best_pos] = -1  # dead: decrements keep it negative
        n_alive -= 1

        row_cols = indices[indptr[node] : indptr[node + 1]]
        new_cols = row_cols[~covered_cols[row_cols]]
        if new_cols.size:
            covered_cols[new_cols] = True
            covered_count += int(new_cols.size)
            # Gather the rows of every newly covered column in one shot
            # (vectorized multi-slice indexing into the CSC index array).
            starts = col_indptr[new_cols]
            lengths = col_indptr[new_cols + 1] - starts
            total = int(lengths.sum())
            if total:
                offsets = np.repeat(starts - (np.cumsum(lengths) - lengths), lengths)
                affected = position_of_row[col_rows[offsets + np.arange(total, dtype=np.int64)]]
                cand_gain -= np.bincount(affected, minlength=cand_gain.size + 1)[:-1]
                evaluations += total

    return CoverageResult(
        selected=np.asarray(selected, dtype=np.int64),
        gains=np.asarray(gains, dtype=np.float64),
        covered=covered_count,
        evaluations=evaluations,
    )


# --------------------------------------------------------------------------- #
# Reference implementation (correctness oracle)
# --------------------------------------------------------------------------- #
def greedy_max_coverage_reference(
    adjacency: sp.csr_matrix,
    pool: np.ndarray,
    budget: int,
    *,
    lazy: bool = True,
) -> CoverageResult:
    """Scalar CELF / eager greedy over CSR index slices.

    The pre-kernel implementation, kept as the oracle the vectorized kernels
    are verified against (property tests and the CI ``perf-smoke`` gate).
    Both branches break gain ties by the lowest node id, matching
    :func:`greedy_max_coverage_packed` exactly.
    """
    pool = np.asarray(pool, dtype=np.int64)
    budget = int(min(budget, pool.size))
    if budget <= 0:
        return _empty_result()

    indptr, indices = adjacency.indptr, adjacency.indices
    covered = np.zeros(adjacency.shape[1], dtype=bool)
    selected: list[int] = []
    gains: list[float] = []
    evaluations = 0

    def marginal_gain(node: int) -> int:
        start, stop = indptr[node], indptr[node + 1]
        neighbors = indices[start:stop]
        return int(np.count_nonzero(~covered[neighbors]))

    if lazy:
        # CELF priority queue of (negative gain, staleness round, node).
        heap: list[tuple[float, int, int]] = []
        for node in pool:
            evaluations += 1
            heapq.heappush(heap, (-float(marginal_gain(int(node))), 0, int(node)))
        round_id = 0
        while heap and len(selected) < budget:
            neg_gain, stamp, node = heapq.heappop(heap)
            if stamp == round_id:
                gain = -neg_gain
                if gain <= 0 and selected:
                    break
                selected.append(node)
                gains.append(gain)
                start, stop = indptr[node], indptr[node + 1]
                covered[indices[start:stop]] = True
                round_id += 1
            else:
                evaluations += 1
                heapq.heappush(heap, (-float(marginal_gain(node)), round_id, node))
    else:
        # Ascending iteration keeps tie-breaking deterministic (lowest id
        # wins), identical to the lazy branch.
        remaining = np.unique(pool).tolist()
        while remaining and len(selected) < budget:
            best_node, best_gain = -1, -1
            for node in remaining:
                evaluations += 1
                gain = marginal_gain(node)
                if gain > best_gain:
                    best_node, best_gain = node, gain
            if best_node < 0 or (best_gain <= 0 and selected):
                break
            selected.append(best_node)
            gains.append(float(best_gain))
            remaining.remove(best_node)
            start, stop = indptr[best_node], indptr[best_node + 1]
            covered[indices[start:stop]] = True

    return CoverageResult(
        selected=np.asarray(selected, dtype=np.int64),
        gains=np.asarray(gains, dtype=np.float64),
        covered=int(covered.sum()),
        evaluations=evaluations,
    )
