"""Neighbour-influence maximisation for father-type nodes (Eq. 10–13).

Father types bridge the target type and the leaf types, so FreeHGC keeps the
father nodes with the largest influence on the (condensed) target nodes.
Influence is measured with personalised PageRank over the symmetric-
normalised bipartite graph induced by every meta-path from the target type
to the father type (Eq. 11), aggregated across meta-paths (Eq. 12), and the
top-k father nodes by total received influence are selected (Eq. 13).

The PPR matrix inverse of Eq. 11 is approximated with power iteration (the
standard approximate-PPR technique the paper cites for scalability); degree
centrality is available as the drop-in alternative mentioned in the paper
("NIM can be replaced by other node importance evaluation algorithms").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from repro.core.metapaths import MetaPath, metapaths_to_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import CondensationContext
from repro.errors import BudgetError
from repro.hetero.graph import HeteroGraph
from repro.hetero.sparse import symmetric_normalize
from repro.core.metapaths import metapath_adjacency

__all__ = ["FatherSelectionResult", "NeighborInfluenceMaximizer", "personalized_pagerank"]


def personalized_pagerank(
    adjacency: sp.csr_matrix,
    restart: np.ndarray,
    *,
    alpha: float = 0.15,
    iterations: int = 30,
    tolerance: float = 1e-8,
) -> np.ndarray:
    """Approximate personalised PageRank on a symmetric-normalised graph.

    Solves ``p = alpha * restart + (1 - alpha) * Â p`` by power iteration,
    the approximation of ``alpha (I - (1 - alpha) Â)^{-1} restart`` (Eq. 11).

    Parameters
    ----------
    adjacency:
        Square adjacency matrix (it is symmetrically normalised internally).
    restart:
        Restart (personalisation) distribution; it is renormalised to sum
        to one.
    alpha:
        Restart probability (``α`` in Eq. 11).
    iterations / tolerance:
        Power-iteration stopping criteria.
    """
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("personalised PageRank requires a square adjacency matrix")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    normalized = symmetric_normalize(adjacency)
    restart = np.asarray(restart, dtype=np.float64)
    total = restart.sum()
    if total <= 0:
        restart = np.full(adjacency.shape[0], 1.0 / adjacency.shape[0])
    else:
        restart = restart / total
    scores = restart.copy()
    teleport = alpha * restart  # constant across iterations; hoisted
    damping = 1.0 - alpha
    for _ in range(iterations):
        updated = teleport + damping * (normalized @ scores)
        if np.abs(updated - scores).sum() < tolerance:
            scores = updated
            break
        scores = updated
    return scores


@dataclass
class FatherSelectionResult:
    """Outcome of father-type selection for one node type."""

    node_type: str
    selected: np.ndarray
    influence: np.ndarray
    metapaths: list[MetaPath]


class NeighborInfluenceMaximizer:
    """Selects father-type nodes by aggregated meta-path influence."""

    def __init__(
        self,
        *,
        max_hops: int = 2,
        max_paths: int = 16,
        alpha: float = 0.15,
        iterations: int = 30,
        importance: str = "ppr",
    ) -> None:
        if importance not in ("ppr", "degree"):
            raise ValueError(f"importance must be 'ppr' or 'degree', got {importance!r}")
        self.max_hops = max_hops
        self.max_paths = max_paths
        self.alpha = alpha
        self.iterations = iterations
        self.importance = importance

    # ------------------------------------------------------------------ #
    def select(
        self,
        graph: HeteroGraph,
        node_type: str,
        budget: int,
        *,
        anchor_nodes: np.ndarray | None = None,
        context: "CondensationContext | None" = None,
    ) -> FatherSelectionResult:
        """Select ``budget`` nodes of father type ``node_type`` (Eq. 13).

        ``anchor_nodes`` restricts the influence computation to the already
        selected (condensed) target nodes, so the kept father nodes are the
        ones most relevant to the condensed graph.  A matching
        :class:`~repro.core.context.CondensationContext` serves the
        meta-path enumeration and adjacencies from its cache.
        """
        if budget < 1:
            raise BudgetError(f"father budget must be >= 1, got {budget}")
        target = graph.schema.target_type
        if node_type == target:
            raise ValueError("father selection does not apply to the target type")
        n_father = graph.num_nodes[node_type]
        budget = min(budget, n_father)

        use_context = context is not None and context.matches(
            graph, max_hops=self.max_hops, max_paths=self.max_paths
        )
        if use_context:
            metapaths = context.metapaths_to(node_type)
        else:
            metapaths = metapaths_to_type(
                graph.schema, target, node_type, self.max_hops, max_paths=self.max_paths
            )
        if not metapaths:
            # Fall back to the direct typed adjacency even if the schema walk
            # found no path (can happen with max_hops=1 on reverse-only links).
            metapaths = [MetaPath((target, node_type))]

        influence = np.zeros(n_father, dtype=np.float64)
        n_target = graph.num_nodes[target]
        if anchor_nodes is None:
            anchor_mask = np.ones(n_target, dtype=np.float64)
        else:
            anchor_mask = np.zeros(n_target, dtype=np.float64)
            anchor_mask[np.asarray(anchor_nodes, dtype=np.int64)] = 1.0

        for metapath in metapaths:
            if use_context:
                adjacency = context.adjacency(metapath, normalize=False)
            else:
                adjacency = metapath_adjacency(graph, metapath, normalize=False)
            if adjacency.nnz == 0:
                continue
            if self.importance == "degree":
                weighted = adjacency.T @ anchor_mask
                influence += np.asarray(weighted).ravel()
                continue
            bipartite = sp.bmat(
                [
                    [None, adjacency],
                    [adjacency.T, None],
                ],
                format="csr",
            )
            restart = np.concatenate([anchor_mask, np.zeros(n_father)])
            scores = personalized_pagerank(
                bipartite, restart, alpha=self.alpha, iterations=self.iterations
            )
            influence += scores[n_target:]

        order = np.argsort(-influence, kind="stable")
        selected = order[:budget]
        return FatherSelectionResult(
            node_type=node_type,
            selected=np.asarray(selected, dtype=np.int64),
            influence=influence,
            metapaths=metapaths,
        )
