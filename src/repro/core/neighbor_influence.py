"""Neighbour-influence maximisation for father-type nodes (Eq. 10–13).

Father types bridge the target type and the leaf types, so FreeHGC keeps the
father nodes with the largest influence on the (condensed) target nodes.
Influence is measured with personalised PageRank over the symmetric-
normalised bipartite graph induced by every meta-path from the target type
to the father type (Eq. 11), aggregated across meta-paths (Eq. 12), and the
top-k father nodes by total received influence are selected (Eq. 13).

The PPR matrix inverse of Eq. 11 is approximated with power iteration (the
standard approximate-PPR technique the paper cites for scalability); degree
centrality is available as the drop-in alternative mentioned in the paper
("NIM can be replaced by other node importance evaluation algorithms").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from repro.core.metapaths import MetaPath, metapaths_to_type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import CondensationContext
from repro.errors import BudgetError
from repro.hetero.graph import HeteroGraph
from repro.hetero.sparse import cached_csc, symmetric_normalize, validate_attribute_caches
from repro.core.metapaths import metapath_adjacency

__all__ = ["FatherSelectionResult", "NeighborInfluenceMaximizer", "personalized_pagerank"]


def _normalized_bipartite(adjacency: sp.csr_matrix) -> sp.csr_matrix:
    """Symmetric-normalised bipartite graph of a target→father adjacency.

    The block matrix of Eq. 11 depends only on the adjacency, not on the
    restart vector, so it is attribute-cached on the adjacency object
    (fingerprint-guarded like the coverage-kernel indexes).  Re-anchored PPR
    runs — every streaming step re-anchors on the fresh target selection —
    then pay only the power iterations.

    For the unit-weight adjacencies this library produces, the block matrix
    is assembled directly instead of via ``bmat`` + two diagonal matmuls:
    bipartite degrees are exact row/column entry counts and every stored
    value is ``deg_inv[i] * deg_inv[j]`` — bit-identical to
    ``symmetric_normalize(bmat(...))`` (multiplying by the stored 1.0 is
    exact, float multiplication is commutative) at a fraction of the cost.
    """
    validate_attribute_caches(adjacency)
    cached = getattr(adjacency, "_repro_nim_bipartite", None)
    if cached is not None:
        return cached
    csr = adjacency.tocsr()
    unit_weight = csr.nnz == 0 or bool((csr.data == 1.0).all())
    if unit_weight:
        n_target, n_father = csr.shape
        csc = cached_csc(csr)  # shared with the decremental kernel
        degrees = np.concatenate(
            [np.diff(csr.indptr), np.diff(csc.indptr)]
        ).astype(np.float64)
        inv = np.zeros_like(degrees)
        positive = degrees > 0
        inv[positive] = 1.0 / np.sqrt(degrees[positive])
        indptr = np.concatenate([csr.indptr, csr.indptr[-1] + csc.indptr[1:]])
        indices = np.concatenate(
            [csr.indices.astype(np.int64) + n_target, csc.indices.astype(np.int64)]
        )
        row_factor = np.repeat(inv, np.diff(indptr))
        data = row_factor * inv[indices]
        cached = sp.csr_matrix(
            (data, indices, indptr),
            shape=(n_target + n_father, n_target + n_father),
        )
        cached.has_canonical_format = True
    else:  # pragma: no cover - weighted adjacencies are not produced here
        bipartite = sp.bmat(
            [
                [None, csr],
                [csr.T, None],
            ],
            format="csr",
        )
        cached = symmetric_normalize(bipartite)
    try:
        adjacency._repro_nim_bipartite = cached
    except AttributeError:  # pragma: no cover - csr accepts attrs
        pass
    return cached


def personalized_pagerank(
    adjacency: sp.csr_matrix,
    restart: np.ndarray,
    *,
    alpha: float = 0.15,
    iterations: int = 30,
    tolerance: float = 1e-8,
    prenormalized: bool = False,
) -> np.ndarray:
    """Approximate personalised PageRank on a symmetric-normalised graph.

    Solves ``p = alpha * restart + (1 - alpha) * Â p`` by power iteration,
    the approximation of ``alpha (I - (1 - alpha) Â)^{-1} restart`` (Eq. 11).

    Parameters
    ----------
    adjacency:
        Square adjacency matrix (it is symmetrically normalised internally).
    restart:
        Restart (personalisation) distribution; it is renormalised to sum
        to one.
    alpha:
        Restart probability (``α`` in Eq. 11).
    iterations / tolerance:
        Power-iteration stopping criteria.
    prenormalized:
        When True, ``adjacency`` is taken to be symmetric-normalised
        already and used as-is.  Callers that run many PPR queries on one
        graph (the NIM stage re-anchoring after every streaming delta)
        normalise once and reuse the result — the scores are bit-identical
        because the same normalised matrix drives the same iterations.
    """
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("personalised PageRank requires a square adjacency matrix")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    normalized = adjacency if prenormalized else symmetric_normalize(adjacency)
    restart = np.asarray(restart, dtype=np.float64)
    total = restart.sum()
    if total <= 0:
        restart = np.full(adjacency.shape[0], 1.0 / adjacency.shape[0])
    else:
        restart = restart / total
    scores = restart.copy()
    teleport = alpha * restart  # constant across iterations; hoisted
    damping = 1.0 - alpha
    for _ in range(iterations):
        updated = teleport + damping * (normalized @ scores)
        if np.abs(updated - scores).sum() < tolerance:
            scores = updated
            break
        scores = updated
    return scores


@dataclass
class FatherSelectionResult:
    """Outcome of father-type selection for one node type."""

    node_type: str
    selected: np.ndarray
    influence: np.ndarray
    metapaths: list[MetaPath]


class NeighborInfluenceMaximizer:
    """Selects father-type nodes by aggregated meta-path influence."""

    def __init__(
        self,
        *,
        max_hops: int = 2,
        max_paths: int = 16,
        alpha: float = 0.15,
        iterations: int = 30,
        importance: str = "ppr",
    ) -> None:
        if importance not in ("ppr", "degree"):
            raise ValueError(f"importance must be 'ppr' or 'degree', got {importance!r}")
        self.max_hops = max_hops
        self.max_paths = max_paths
        self.alpha = alpha
        self.iterations = iterations
        self.importance = importance

    # ------------------------------------------------------------------ #
    def select(
        self,
        graph: HeteroGraph,
        node_type: str,
        budget: int,
        *,
        anchor_nodes: np.ndarray | None = None,
        context: "CondensationContext | None" = None,
    ) -> FatherSelectionResult:
        """Select ``budget`` nodes of father type ``node_type`` (Eq. 13).

        ``anchor_nodes`` restricts the influence computation to the already
        selected (condensed) target nodes, so the kept father nodes are the
        ones most relevant to the condensed graph.  A matching
        :class:`~repro.core.context.CondensationContext` serves the
        meta-path enumeration and adjacencies from its cache.
        """
        if budget < 1:
            raise BudgetError(f"father budget must be >= 1, got {budget}")
        target = graph.schema.target_type
        if node_type == target:
            raise ValueError("father selection does not apply to the target type")
        n_father = graph.num_nodes[node_type]
        budget = min(budget, n_father)

        use_context = context is not None and context.matches(
            graph, max_hops=self.max_hops, max_paths=self.max_paths
        )
        if use_context:
            metapaths = context.metapaths_to(node_type)
        else:
            metapaths = metapaths_to_type(
                graph.schema, target, node_type, self.max_hops, max_paths=self.max_paths
            )
        if not metapaths:
            # Fall back to the direct typed adjacency even if the schema walk
            # found no path (can happen with max_hops=1 on reverse-only links).
            metapaths = [MetaPath((target, node_type))]

        influence = np.zeros(n_father, dtype=np.float64)
        n_target = graph.num_nodes[target]
        if anchor_nodes is None:
            anchor_mask = np.ones(n_target, dtype=np.float64)
        else:
            anchor_mask = np.zeros(n_target, dtype=np.float64)
            anchor_mask[np.asarray(anchor_nodes, dtype=np.int64)] = 1.0

        for metapath in metapaths:
            if use_context:
                adjacency = context.adjacency(metapath, normalize=False)
            else:
                adjacency = metapath_adjacency(graph, metapath, normalize=False)
            if adjacency.nnz == 0:
                continue
            if self.importance == "degree":
                weighted = adjacency.T @ anchor_mask
                influence += np.asarray(weighted).ravel()
                continue
            restart = np.concatenate([anchor_mask, np.zeros(n_father)])
            scores = personalized_pagerank(
                _normalized_bipartite(adjacency),
                restart,
                alpha=self.alpha,
                iterations=self.iterations,
                prenormalized=True,
            )
            influence += scores[n_target:]

        order = np.argsort(-influence, kind="stable")
        selected = order[:budget]
        return FatherSelectionResult(
            node_type=node_type,
            selected=np.asarray(selected, dtype=np.int64),
            influence=influence,
            metapaths=metapaths,
        )
