"""FreeHGC core: the paper's training-free condensation algorithm."""

from repro.core.condenser import FreeHGC, assemble_condensed_graph
from repro.core.context import CondensationContext
from repro.core.criterion import TargetNodeSelector, TargetSelectionResult
from repro.core.metapaths import (
    MetaPath,
    enumerate_metapaths,
    metapath_adjacency,
    metapaths_to_type,
)
from repro.core.neighbor_influence import (
    FatherSelectionResult,
    NeighborInfluenceMaximizer,
    personalized_pagerank,
)
from repro.core.coverage_kernels import PackedAdjacency
from repro.core.receptive_field import (
    CoverageResult,
    greedy_max_coverage,
    greedy_max_coverage_reference,
    receptive_field_size,
)
from repro.core.similarity import (
    jaccard_between_sets,
    metapath_similarity_scores,
    pairwise_jaccard,
)
from repro.core.stages import (
    ConfigurableStage,
    CriterionTargetStage,
    HerdingOtherStage,
    HerdingTargetStage,
    NeighborInfluenceStage,
    OtherTypeStage,
    StageResult,
    SynthesisStage,
    TargetStage,
)
from repro.core.synthesis import InformationLossMinimizer, SyntheticLeafNodes
from repro.core.topology import TypeHierarchy, classify_node_types

__all__ = [
    "FreeHGC",
    "assemble_condensed_graph",
    "CondensationContext",
    "TargetStage",
    "OtherTypeStage",
    "StageResult",
    "ConfigurableStage",
    "CriterionTargetStage",
    "HerdingTargetStage",
    "NeighborInfluenceStage",
    "SynthesisStage",
    "HerdingOtherStage",
    "TargetNodeSelector",
    "TargetSelectionResult",
    "MetaPath",
    "enumerate_metapaths",
    "metapath_adjacency",
    "metapaths_to_type",
    "NeighborInfluenceMaximizer",
    "FatherSelectionResult",
    "personalized_pagerank",
    "CoverageResult",
    "greedy_max_coverage",
    "greedy_max_coverage_reference",
    "PackedAdjacency",
    "receptive_field_size",
    "pairwise_jaccard",
    "metapath_similarity_scores",
    "jaccard_between_sets",
    "InformationLossMinimizer",
    "SyntheticLeafNodes",
    "TypeHierarchy",
    "classify_node_types",
]
