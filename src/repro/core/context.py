"""Shared condensation context: lazily computed, memoized per-graph artifacts.

Every stage of FreeHGC — the unified target criterion, neighbour-influence
maximisation for father types, the synthesis stage, and the coreset-style
embedding helpers — consumes the same expensive intermediate products:

* the enumerated meta-paths anchored at the target type,
* the composed meta-path adjacency matrices (boolean reachability for
  receptive fields / Jaccard similarity, row-normalised for feature
  propagation),
* the receptive-field sets those boolean adjacencies encode,
* the root / father / leaf type hierarchy,
* the propagated meta-path feature blocks and the derived embeddings.

Before this module existed each stage recomputed those products from
scratch, so a single ``FreeHGC.condense`` call could compose the same
meta-path adjacency several times.  A :class:`CondensationContext` is
created once per ``condense()`` call (or shared explicitly across calls on
the same graph) and hands every stage the memoized artifact instead.

The context is keyed by ``(graph, max_hops, max_paths)``: all artifacts are
deterministic functions of those three inputs, so cached and uncached
results are identical — ``cache=False`` exists purely to measure the
speedup and to double-check that invariant in tests.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.core.coverage_kernels import PackedAdjacency
from repro.core.metapaths import MetaPath, enumerate_metapaths, metapath_adjacency
from repro.core.topology import TypeHierarchy, classify_node_types
from repro.hetero.graph import HeteroGraph
from repro.models.propagation import SELF_FEATURE_KEY, standardize_features

__all__ = ["CondensationContext"]


class CondensationContext:
    """Memoized per-``(graph, max_hops, max_paths)`` condensation artifacts.

    Parameters
    ----------
    graph:
        The heterogeneous graph being condensed.
    max_hops:
        Maximum meta-path length ``K`` shared by every stage.
    max_paths:
        Cap on the number of enumerated meta-paths.
    cache:
        When False every accessor recomputes from scratch (used by the
        efficiency benchmark and the cache-equivalence tests).

    Attributes
    ----------
    stats:
        Counters of cache behaviour: ``metapath_enumerations``,
        ``adjacency_builds``, ``adjacency_hits``, ``packed_builds``,
        ``packed_hits``, ``embedding_builds`` and ``embedding_hits``.
        Useful in tests and benchmarks.

    Examples
    --------
    >>> from repro.core import CondensationContext
    >>> from repro.datasets import load_acm
    >>> context = CondensationContext(load_acm(scale=0.1, seed=0), max_hops=2)
    >>> paths = context.metapaths()
    >>> paths is context.metapaths()        # enumerated once, memoized
    True
    >>> context.stats["metapath_enumerations"]
    1
    """

    def __init__(
        self,
        graph: HeteroGraph,
        *,
        max_hops: int = 2,
        max_paths: int = 16,
        cache: bool = True,
    ) -> None:
        if max_hops < 1:
            raise ValueError(f"max_hops must be >= 1, got {max_hops}")
        if max_paths < 1:
            raise ValueError(f"max_paths must be >= 1, got {max_paths}")
        self.graph = graph
        self.max_hops = int(max_hops)
        self.max_paths = int(max_paths)
        self.cache_enabled = bool(cache)
        self.stats: dict[str, int] = {
            "metapath_enumerations": 0,
            "adjacency_builds": 0,
            "adjacency_hits": 0,
            "packed_builds": 0,
            "packed_hits": 0,
            "embedding_builds": 0,
            "embedding_hits": 0,
            "invalidated_adjacencies": 0,
            "patched_adjacencies": 0,
        }
        #: optional per-selection memo consulted by the unified criterion
        #: (duck-typed; the streaming subsystem installs a
        #: :class:`repro.streaming.warmstart.SelectionMemo` here).  ``None``
        #: (the default) leaves the criterion's behaviour untouched.
        self.selection_memo = None
        self._hierarchy: TypeHierarchy | None = None
        self._metapaths: list[MetaPath] | None = None
        self._metapaths_to: dict[str, list[MetaPath]] = {}
        self._adjacencies: dict[tuple[tuple[str, ...], bool], sp.csr_matrix] = {}
        self._packed: dict[tuple[str, ...], PackedAdjacency] = {}
        self._feature_blocks: dict[str, np.ndarray] | None = None
        self._target_embeddings: np.ndarray | None = None
        self._other_embeddings: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Schema-level artifacts
    # ------------------------------------------------------------------ #
    @property
    def target_type(self) -> str:
        """The labelled node type the condensation is anchored on."""
        return self.graph.schema.target_type

    @property
    def hierarchy(self) -> TypeHierarchy:
        """Root / father / leaf classification of the schema (Fig. 5)."""
        if self._hierarchy is None or not self.cache_enabled:
            self._hierarchy = classify_node_types(self.graph.schema)
        return self._hierarchy

    def metapaths(self) -> list[MetaPath]:
        """All meta-paths anchored at the target type (memoized)."""
        if self._metapaths is None or not self.cache_enabled:
            self.stats["metapath_enumerations"] += 1
            self._metapaths = enumerate_metapaths(
                self.graph.schema,
                self.target_type,
                self.max_hops,
                max_paths=self.max_paths,
            )
        return self._metapaths

    def metapaths_to(self, end_type: str) -> list[MetaPath]:
        """Meta-paths from the target type that terminate at ``end_type``."""
        cached = self._metapaths_to.get(end_type)
        if cached is None or not self.cache_enabled:
            cached = [path for path in self.metapaths() if path.end == end_type]
            self._metapaths_to[end_type] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Graph-level artifacts
    # ------------------------------------------------------------------ #
    def adjacency(self, metapath: MetaPath, *, normalize: bool = False) -> sp.csr_matrix:
        """Composed adjacency of ``metapath`` (Eq. 1), memoized per form.

        ``normalize=False`` yields the boolean reachability product whose
        rows are the per-node *receptive-field sets* used by the coverage
        and similarity terms; ``normalize=True`` yields the row-normalised
        product used for feature propagation.
        """
        key = (metapath.node_types, bool(normalize))
        cached = self._adjacencies.get(key)
        if cached is None or not self.cache_enabled:
            self.stats["adjacency_builds"] += 1
            cached = metapath_adjacency(self.graph, metapath, normalize=normalize)
            self._adjacencies[key] = cached
        else:
            self.stats["adjacency_hits"] += 1
        return cached

    def receptive_field(self, metapath: MetaPath) -> sp.csr_matrix:
        """Boolean reachability matrix: row ``i`` is node ``i``'s receptive field."""
        return self.adjacency(metapath, normalize=False)

    def packed_receptive_field(self, metapath: MetaPath) -> PackedAdjacency:
        """Bit-packed receptive fields of ``metapath``, memoized per path.

        The packed form feeds the vectorized coverage kernels
        (:mod:`repro.core.coverage_kernels`).  The words are cached on the
        memoized boolean adjacency itself (so the per-class greedy runs of
        the unified criterion — and any other consumer — pack each
        meta-path exactly once) and additionally keyed here so ``clear()``
        and the stats counters behave like the other accessors.
        """
        key = metapath.node_types
        cached = self._packed.get(key)
        if cached is None or not self.cache_enabled:
            self.stats["packed_builds"] += 1
            cached = PackedAdjacency.from_csr_cached(self.receptive_field(metapath))
            self._packed[key] = cached
        else:
            self.stats["packed_hits"] += 1
        return cached

    # ------------------------------------------------------------------ #
    # Feature / embedding artifacts
    # ------------------------------------------------------------------ #
    def target_feature_blocks(self) -> dict[str, np.ndarray]:
        """Propagated meta-path feature blocks of every target-type node.

        Equivalent to
        :func:`repro.models.propagation.propagate_metapath_features` with
        ``include_self=True``, but routed through the memoized normalised
        adjacencies.  The returned mapping is the live cache: the arrays
        are marked read-only — copy before mutating.
        """
        if self._feature_blocks is None or not self.cache_enabled:
            self.stats["embedding_builds"] += 1
            blocks: dict[str, np.ndarray] = {
                SELF_FEATURE_KEY: self.graph.features[self.target_type].copy()
            }
            for path in self.metapaths():
                propagated = self.adjacency(path, normalize=True) @ self.graph.features[path.end]
                blocks[str(path)] = np.asarray(propagated)
            for block in blocks.values():
                block.setflags(write=False)
            self._feature_blocks = blocks
        else:
            self.stats["embedding_hits"] += 1
        return self._feature_blocks

    def target_embeddings(self) -> np.ndarray:
        """Standardised, concatenated meta-path embedding of target nodes."""
        if self._target_embeddings is None or not self.cache_enabled:
            features = standardize_features(self.target_feature_blocks())
            blocks = [features[key] for key in sorted(features)]
            self._target_embeddings = np.concatenate(blocks, axis=1)
            self._target_embeddings.setflags(write=False)
        return self._target_embeddings

    def other_type_embeddings(self, node_type: str) -> np.ndarray:
        """Feature + normalised-degree embedding of a non-target type."""
        cached = self._other_embeddings.get(node_type)
        if cached is None or not self.cache_enabled:
            # Local import: baselines.embeddings is higher in the layering.
            from repro.baselines.embeddings import other_type_embeddings

            self.stats["embedding_builds"] += 1
            cached = other_type_embeddings(self.graph, node_type)
            cached.setflags(write=False)
            self._other_embeddings[node_type] = cached
        else:
            self.stats["embedding_hits"] += 1
        return cached

    # ------------------------------------------------------------------ #
    # Streaming patch hooks
    # ------------------------------------------------------------------ #
    def cached_path_keys(self, *, normalize: bool = False) -> list[tuple[str, ...]]:
        """Path keys whose composed adjacency of one form is memoized."""
        return [
            key
            for key, cached_form in self._adjacencies
            if cached_form == bool(normalize)
        ]

    def cached_adjacency(
        self, node_types: tuple[str, ...], *, normalize: bool = False
    ) -> sp.csr_matrix | None:
        """The memoized adjacency of a path key, or None (never builds)."""
        return self._adjacencies.get((tuple(node_types), bool(normalize)))

    def install_adjacency(
        self, node_types: tuple[str, ...], matrix: sp.csr_matrix
    ) -> None:
        """Replace the boolean adjacency of one path with a patched matrix.

        Used by the streaming delta applier after row-level patching: the
        patched matrix must equal what :meth:`adjacency` would compose from
        the mutated graph.  The path's normalised sibling, its packed entry
        and the aggregate feature/embedding blocks are dropped (patching
        covers only the boolean form; packed words may be pre-attached on
        ``matrix`` by the patcher and are picked up lazily).
        """
        key = tuple(node_types)
        self._adjacencies[(key, False)] = matrix
        self._adjacencies.pop((key, True), None)
        self._packed.pop(key, None)
        self._feature_blocks = None
        self._target_embeddings = None
        self.stats["patched_adjacencies"] += 1

    def invalidate_type_embeddings(self, node_types: "Iterable[str]") -> None:
        """Drop per-type and aggregate embeddings of the given types."""
        touched = False
        for node_type in node_types:
            self._other_embeddings.pop(node_type, None)
            touched = True
        if touched:
            self._feature_blocks = None
            self._target_embeddings = None

    # ------------------------------------------------------------------ #
    # Partial invalidation (streaming deltas)
    # ------------------------------------------------------------------ #
    def _drop_paths(self, is_affected) -> list[tuple[str, ...]]:
        """Drop every memoized adjacency/packed entry whose path matches.

        ``is_affected`` maps a path's ``node_types`` tuple to bool.  Returns
        the distinct path keys dropped.  Feature blocks and target
        embeddings aggregate *all* meta-path products, so they are dropped
        whenever at least one path is.
        """
        dropped: list[tuple[str, ...]] = []
        for key in list(self._adjacencies):
            node_types, _normalize = key
            if is_affected(node_types):
                del self._adjacencies[key]
                if node_types not in dropped:
                    dropped.append(node_types)
        for node_types in list(self._packed):
            if is_affected(node_types):
                del self._packed[node_types]
                if node_types not in dropped:
                    dropped.append(node_types)
        if dropped:
            self.stats["invalidated_adjacencies"] += len(dropped)
            self._feature_blocks = None
            self._target_embeddings = None
        return dropped

    def invalidate_edges(
        self, type_pairs: "Iterable[tuple[str, str]]"
    ) -> list[tuple[str, ...]]:
        """Invalidate artifacts that depend on edges between the given type pairs.

        ``type_pairs`` are ``(src, dst)`` node-type pairs whose combined
        adjacency changed (orientation is ignored — meta-path composition
        walks :meth:`~repro.hetero.graph.HeteroGraph.typed_adjacency`, which
        merges both directions).  Every memoized meta-path adjacency whose
        hop sequence crosses an affected pair is dropped, together with its
        packed form and the aggregate feature/embedding blocks; everything
        else survives.  Returns the dropped path keys.
        """
        affected = {frozenset(pair) for pair in type_pairs}
        if not affected:
            return []
        affected_types = set().union(*affected)

        def is_affected(node_types: tuple[str, ...]) -> bool:
            return any(
                frozenset(hop) in affected
                for hop in zip(node_types[:-1], node_types[1:])
            )

        dropped = self._drop_paths(is_affected)
        # Degree-based embeddings of the touched endpoint types are stale.
        for node_type in affected_types:
            self._other_embeddings.pop(node_type, None)
        return dropped

    def invalidate_paths(
        self, keys: "Iterable[tuple[str, ...]]"
    ) -> list[tuple[str, ...]]:
        """Drop the memoized adjacencies (both forms) of specific path keys."""
        key_set = {tuple(key) for key in keys}
        if not key_set:
            return []
        return self._drop_paths(lambda node_types: node_types in key_set)

    def invalidate_nodes(self, node_types: "Iterable[str]") -> list[tuple[str, ...]]:
        """Invalidate artifacts that depend on the node sets of ``node_types``.

        Used after node insertion/removal: every meta-path visiting an
        affected type changes shape (or content), so its adjacency, packed
        form and the aggregate feature/embedding blocks are dropped, as are
        the per-type embeddings of the affected types.  The schema-level
        artifacts (hierarchy, enumerated meta-paths) only depend on the
        static schema and survive.  Returns the dropped path keys.
        """
        affected = set(node_types)
        if not affected:
            return []

        def is_affected(path_types: tuple[str, ...]) -> bool:
            return bool(affected.intersection(path_types))

        dropped = self._drop_paths(is_affected)
        for node_type in affected:
            self._other_embeddings.pop(node_type, None)
        if self.target_type in affected:
            self._feature_blocks = None
            self._target_embeddings = None
        return dropped

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every memoized artifact (keeps the stats counters)."""
        self._hierarchy = None
        self._metapaths = None
        self._metapaths_to.clear()
        self._adjacencies.clear()
        self._packed.clear()
        self._feature_blocks = None
        self._target_embeddings = None
        self._other_embeddings.clear()

    def compatible_with(self, *, max_hops: int, max_paths: int) -> bool:
        """Whether this context's artifacts match the given hop settings."""
        return self.max_hops == int(max_hops) and self.max_paths == int(max_paths)

    def matches(
        self,
        graph: HeteroGraph,
        *,
        max_hops: int | None = None,
        max_paths: int | None = None,
    ) -> bool:
        """Whether this context can serve artifacts for ``graph``.

        The single compatibility predicate every context-aware helper uses:
        the context must have been built for the *same* graph object and,
        when hop settings are given, with the same ``max_hops``/``max_paths``.
        """
        if self.graph is not graph:
            return False
        if max_hops is not None and self.max_hops != int(max_hops):
            return False
        if max_paths is not None and self.max_paths != int(max_paths):
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CondensationContext(graph={self.graph.schema.name!r}, "
            f"max_hops={self.max_hops}, max_paths={self.max_paths}, "
            f"cached_adjacencies={len(self._adjacencies)})"
        )
