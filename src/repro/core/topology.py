"""Topology classification of node types (Fig. 5 of the paper).

FreeHGC condenses non-target node types with two different strategies, chosen
by the role the type plays in the schema's vertical hierarchy:

* the **root type** is the target (labelled) type;
* **father types** are directly connected to the root — they bridge the root
  and everything else, so they are *selected* by neighbour-influence
  maximisation;
* **leaf types** are only reachable through father types — they are
  *synthesised* by information-loss minimisation.

ACM and IMDB have only fathers (Structure 1); DBLP and AMiner have a clean
root → father → leaf chain (Structure 2); Freebase-style knowledge graphs mix
both with extra cross links (Structure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hetero.schema import HeteroSchema

__all__ = ["TypeHierarchy", "classify_node_types"]


@dataclass(frozen=True)
class TypeHierarchy:
    """Partition of node types into root / father / leaf roles."""

    root: str
    fathers: tuple[str, ...]
    leaves: tuple[str, ...]

    @property
    def structure(self) -> int:
        """The Fig. 5 structure family: 1 (no leaves), 2 (chain), or 3 (mixed)."""
        if not self.leaves:
            return 1
        if len(self.fathers) == 1:
            return 2
        return 3

    def role_of(self, node_type: str) -> str:
        """Return ``"root"``, ``"father"`` or ``"leaf"`` for ``node_type``."""
        if node_type == self.root:
            return "root"
        if node_type in self.fathers:
            return "father"
        if node_type in self.leaves:
            return "leaf"
        raise KeyError(f"unknown node type {node_type!r}")


def classify_node_types(schema: HeteroSchema) -> TypeHierarchy:
    """Classify every node type of ``schema`` into root / father / leaf.

    Father types are the types adjacent to the target type at the schema
    level; every remaining type is a leaf.  Types that are completely
    disconnected from the target (possible in pathological schemas) are also
    treated as leaves so they still receive a condensation strategy.
    """
    root = schema.target_type
    fathers = tuple(t for t in schema.neighbor_types(root) if t != root)
    father_set = set(fathers)
    leaves = tuple(
        t for t in schema.node_types if t != root and t not in father_set
    )
    return TypeHierarchy(root=root, fathers=fathers, leaves=leaves)
