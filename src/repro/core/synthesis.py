"""Information-loss-minimising synthesis of leaf-type nodes (Eq. 14–16).

Leaf types are only reachable through father types, so instead of selecting
individual leaf nodes FreeHGC *synthesises* hyper-nodes: for every condensed
father node the features of its leaf neighbours are merged with the mean
aggregator (Eq. 14) — simulating exactly the mean neighbour aggregation the
downstream HGNNs perform, which is why the synthesis loses no information the
models would have used.  Reverse edges to the other father nodes touching the
same leaf neighbourhood restore the 2-hop father–father connectivity that
naive synthesis would break (Eq. 15).  Hyper-nodes with the lowest degree are
merged further until the leaf-type budget is met (Eq. 16).

Providers may themselves be synthesised: when ``father_strategy="ilm"`` the
condensed father type is a set of hyper-nodes, each merging several original
father nodes.  Such a provider contributes one synthesis seed per father
hyper-node whose leaf neighbourhood is the union over its members, and the
recorded edges then reference the father *hyper-node* index (condensed
space) instead of an original index.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BudgetError
from repro.hetero.graph import HeteroGraph

__all__ = ["SyntheticLeafNodes", "InformationLossMinimizer"]


@dataclass
class SyntheticLeafNodes:
    """Synthesised hyper-nodes for one leaf type.

    Attributes
    ----------
    node_type:
        The leaf node type these hyper-nodes replace.
    features:
        ``(num_hyper_nodes, feature_dim)`` aggregated features.
    edges:
        Mapping ``father_type -> [(father_index, hyper_node_index)]`` giving
        the father–leaf connections of the condensed graph.  ``father_index``
        is an *original* node index when the provider was a selection, and a
        father *hyper-node* index when the provider was itself synthesised
        (see ``hyper_provider_types``).
    members:
        Original leaf-node indices merged into each hyper-node (diagnostics
        and tests).
    hyper_provider_types:
        Father types whose edge indices live in condensed hyper-node space.
    """

    node_type: str
    features: np.ndarray
    edges: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    members: list[np.ndarray] = field(default_factory=list)
    hyper_provider_types: frozenset[str] = frozenset()

    @property
    def num_nodes(self) -> int:
        """Number of synthesised hyper-nodes."""
        return int(self.features.shape[0])


def _provider_seeds(
    provider: "np.ndarray | SyntheticLeafNodes",
) -> list[tuple[int, np.ndarray]]:
    """Normalise a provider into ``(provider_index, member_original_indices)`` seeds.

    Selected providers contribute one seed per original node (its own
    singleton member set); synthesised providers contribute one seed per
    hyper-node with the hyper-node's merged member set.
    """
    if isinstance(provider, SyntheticLeafNodes):
        return [
            (index, np.asarray(members, dtype=np.int64))
            for index, members in enumerate(provider.members)
        ]
    nodes = np.asarray(provider, dtype=np.int64)
    return [(int(node), np.asarray([node], dtype=np.int64)) for node in nodes]


class InformationLossMinimizer:
    """Synthesises leaf-type hyper-nodes by simulating mean aggregation."""

    def __init__(self, *, aggregator: str = "mean", add_reverse_edges: bool = True) -> None:
        if aggregator not in ("mean", "sum"):
            raise ValueError(f"aggregator must be 'mean' or 'sum', got {aggregator!r}")
        self.aggregator = aggregator
        self.add_reverse_edges = add_reverse_edges

    # ------------------------------------------------------------------ #
    def synthesize(
        self,
        graph: HeteroGraph,
        leaf_type: str,
        budget: int,
        selected_fathers: "dict[str, np.ndarray | SyntheticLeafNodes]",
    ) -> SyntheticLeafNodes:
        """Create at most ``budget`` hyper-nodes of ``leaf_type`` (Eq. 16).

        Parameters
        ----------
        graph:
            The original graph.
        leaf_type:
            The leaf node type to synthesise.
        budget:
            Condensation budget ``B`` for this type.
        selected_fathers:
            Already-condensed father nodes per father type: either original
            indices (selection strategies) or the synthesised father
            hyper-nodes (``father_strategy="ilm"``).
        """
        if budget < 1:
            raise BudgetError(f"leaf budget must be >= 1, got {budget}")
        feature_dim = graph.features[leaf_type].shape[1]
        leaf_features = graph.features[leaf_type]

        hyper_providers = frozenset(
            father
            for father, provider in selected_fathers.items()
            if isinstance(provider, SyntheticLeafNodes)
        )

        # Father types actually connected to this leaf type.
        connected_fathers = [
            father
            for father in selected_fathers
            if graph.typed_adjacency(father, leaf_type).nnz > 0
        ]
        if not connected_fathers:
            # Isolated leaf type: fall back to a single mean hyper-node so the
            # schema stays fully populated.
            mean = leaf_features.mean(axis=0, keepdims=True) if leaf_features.size else (
                np.zeros((1, feature_dim))
            )
            return SyntheticLeafNodes(leaf_type, mean, {}, [np.arange(leaf_features.shape[0])])

        adjacency = {
            father: graph.typed_adjacency(father, leaf_type).tocsr()
            for father in connected_fathers
        }
        seeds = {
            father: _provider_seeds(selected_fathers[father])
            for father in connected_fathers
        }
        # Hyper-node records: (creator father type, creator provider index,
        # member leaf indices, extra father connections).
        records: list[dict[str, object]] = []
        for father in connected_fathers:
            matrix = adjacency[father]
            for provider_index, provider_members in seeds[father]:
                neighbor_blocks = [
                    matrix.indices[matrix.indptr[node] : matrix.indptr[node + 1]]
                    for node in provider_members
                ]
                members = (
                    np.unique(np.concatenate(neighbor_blocks))
                    if neighbor_blocks
                    else np.empty(0, dtype=np.int64)
                )
                if members.size == 0:
                    continue
                records.append(
                    {
                        "father_type": father,
                        "father_node": int(provider_index),
                        "members": members,
                    }
                )
        if not records:
            mean = leaf_features.mean(axis=0, keepdims=True)
            return SyntheticLeafNodes(
                leaf_type,
                mean,
                {},
                [np.arange(leaf_features.shape[0])],
                hyper_provider_types=hyper_providers,
            )

        # Merge lowest-degree hyper-nodes until the budget is met (Eq. 16).
        while len(records) > budget:
            records.sort(key=lambda record: len(record["members"]))
            first, second = records[0], records[1]
            merged_members = np.union1d(first["members"], second["members"])
            merged = {
                "father_type": first["father_type"],
                "father_node": first["father_node"],
                "members": merged_members,
                "extra_creators": (
                    first.get("extra_creators", [])
                    + second.get("extra_creators", [])
                    + [(second["father_type"], second["father_node"])]
                ),
            }
            records = [merged] + records[2:]

        features = np.zeros((len(records), feature_dim), dtype=np.float64)
        members_out: list[np.ndarray] = []
        edges: dict[str, list[tuple[int, int]]] = {father: [] for father in connected_fathers}
        for hyper_index, record in enumerate(records):
            members = np.asarray(record["members"], dtype=np.int64)
            members_out.append(members)
            block = leaf_features[members]
            features[hyper_index] = (
                block.mean(axis=0) if self.aggregator == "mean" else block.sum(axis=0)
            )
            creator_type = str(record["father_type"])
            edges[creator_type].append((int(record["father_node"]), hyper_index))
            for extra_type, extra_node in record.get("extra_creators", []):
                edges[str(extra_type)].append((int(extra_node), hyper_index))
            if self.add_reverse_edges:
                # Eq. 15: connect the hyper-node to every *other* condensed
                # father node whose leaf neighbourhood overlaps this one, so
                # father-father 2-hop paths through the leaf survive.
                for father in connected_fathers:
                    matrix = adjacency[father]
                    touching = np.unique(matrix[:, members].nonzero()[0])
                    if father in hyper_providers:
                        for provider_index, provider_members in seeds[father]:
                            if father == creator_type and int(provider_index) == int(
                                record["father_node"]
                            ):
                                continue
                            if np.intersect1d(touching, provider_members).size:
                                edges[father].append((int(provider_index), hyper_index))
                    else:
                        # Selection provider: one vectorized intersect over
                        # all selected father nodes (the common, hot case).
                        selected_set = np.asarray(selected_fathers[father], dtype=np.int64)
                        relevant = np.intersect1d(touching, selected_set)
                        for father_node in relevant:
                            if father == creator_type and int(father_node) == int(
                                record["father_node"]
                            ):
                                continue
                            edges[father].append((int(father_node), hyper_index))

        # Deduplicate edge lists.
        for father in edges:
            edges[father] = sorted(set(edges[father]))
        return SyntheticLeafNodes(
            leaf_type,
            features,
            edges,
            members_out,
            hyper_provider_types=hyper_providers,
        )
