"""Unified name registry for condensers, stage strategies, models and datasets.

Every pluggable component of the library is reachable through one of the
module-level :class:`Registry` instances below:

``condensers``
    Factory callables ``(*, max_hops=2, fast_optimization=True, **overrides)``
    returning a :class:`~repro.baselines.base.GraphCondenser` (FreeHGC and
    every baseline of the paper's comparison).
``target_stages``
    Stage classes condensing the *target* (labelled) node type — the first
    stage of FreeHGC and the knob behind ablation Variants #1–#3.
``other_stages``
    Stage classes condensing father/leaf node types (NIM, ILM synthesis,
    herding — Variants #4–#6).
``models``
    Evaluation HGNN classifier classes.
``datasets``
    :class:`~repro.datasets.registry.DatasetEntry` records.

All lookups are case-insensitive, support aliases, and raise
:class:`~repro.errors.RegistryError` whose message lists the valid names.
Built-in components self-register lazily on first lookup so that importing
this module stays cheap and cycle-free.

Examples
--------
>>> from repro import registry
>>> "freehgc" in registry.condensers
True
>>> registry.condensers.canonical("free-hgc")     # aliases resolve
'freehgc'
>>> registry.models.canonical("SGC")              # lookups are case-insensitive
'heterosgc'
>>> registry.datasets.get("acm").max_hops
3
"""

from __future__ import annotations

from typing import Callable, Iterator, TypeVar

from repro.errors import RegistryError

__all__ = [
    "Registry",
    "condensers",
    "target_stages",
    "other_stages",
    "models",
    "datasets",
]

T = TypeVar("T")


class Registry:
    """Case-insensitive name → object mapping with aliases.

    Parameters
    ----------
    kind:
        Human-readable component kind used in error messages
        (``"condenser"``, ``"model"``, ...).

    Examples
    --------
    >>> demo = Registry("demo")
    >>> @demo.register("alpha", aliases=("a",))
    ... class Alpha:
    ...     pass
    >>> demo.canonical("A")
    'alpha'
    >>> demo.get("a") is Alpha
    True
    >>> demo.aliases_of("alpha")
    ('a',)
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, object] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        obj: T | None = None,
        *,
        aliases: tuple[str, ...] = (),
    ) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name`` (plus ``aliases``).

        Can be used directly (``registry.register("nim", NIMStage)``) or as
        a class decorator (``@registry.register("nim", aliases=("ppr",))``).
        Re-registering an existing name or alias raises
        :class:`RegistryError` — shadowing a built-in silently is never what
        the caller wants.
        """
        if obj is None:

            def decorator(decorated: T) -> T:
                self.register(name, decorated, aliases=aliases)
                return decorated

            return decorator

        key = self._normalize(name)
        if key in self._entries or key in self._aliases:
            raise RegistryError(f"{self.kind} {name!r} is already registered")
        self._entries[key] = obj
        for alias in aliases:
            alias_key = self._normalize(alias)
            if alias_key in self._entries or alias_key in self._aliases:
                raise RegistryError(
                    f"alias {alias!r} for {self.kind} {name!r} is already registered"
                )
            self._aliases[alias_key] = key
        return obj

    def unregister(self, name: str) -> object:
        """Remove ``name`` (and every alias resolving to it) from the registry.

        Intended for plugin teardown — a test or notebook that registered a
        temporary component can restore the registry to its previous state.

        Parameters
        ----------
        name:
            Canonical name or alias of the component to remove.

        Returns
        -------
        The previously registered object.

        Examples
        --------
        >>> demo = Registry("demo")
        >>> demo.register("thing", object()) is demo.unregister("thing")
        True
        >>> "thing" in demo
        False
        """
        key = self.canonical(name)
        removed = self._entries.pop(key)
        for alias in [a for a, target in self._aliases.items() if target == key]:
            del self._aliases[alias]
        return removed

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def canonical(self, name: str) -> str:
        """Resolve ``name`` (or an alias) to its canonical registered name."""
        _ensure_builtins()
        key = self._normalize(name)
        if key in self._entries:
            return key
        if key in self._aliases:
            return self._aliases[key]
        raise RegistryError(
            f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
        )

    def get(self, name: str) -> object:
        """Return the object registered under ``name`` or one of its aliases."""
        return self._entries[self.canonical(name)]

    def create(self, name: str, **kwargs: object) -> object:
        """Call the registered factory/class ``name`` with ``kwargs``."""
        factory = self.get(name)
        return factory(**kwargs)  # type: ignore[operator]

    def names(self) -> tuple[str, ...]:
        """Sorted canonical names of every registered component."""
        _ensure_builtins()
        return tuple(sorted(self._entries))

    def aliases_of(self, name: str) -> tuple[str, ...]:
        """Sorted aliases resolving to ``name``."""
        canonical = self.canonical(name)
        return tuple(
            sorted(alias for alias, target in self._aliases.items() if target == canonical)
        )

    def __contains__(self, name: str) -> bool:
        try:
            self.canonical(name)
        except RegistryError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        _ensure_builtins()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, entries={len(self._entries)})"

    @staticmethod
    def _normalize(name: str) -> str:
        if not isinstance(name, str) or not name.strip():
            raise RegistryError(f"registry names must be non-empty strings, got {name!r}")
        return name.strip().lower()


#: Condenser factories (FreeHGC + every baseline).
condensers = Registry("condenser")
#: Target-type condensation stages (ablation Variants #1–#3).
target_stages = Registry("target stage")
#: Father/leaf condensation stages (ablation Variants #4–#6).
other_stages = Registry("stage")
#: Evaluation HGNN classifiers.
models = Registry("model")
#: Dataset entries (loader + paper hyper-parameters).
datasets = Registry("dataset")


# ---------------------------------------------------------------------- #
# Lazy built-in population
# ---------------------------------------------------------------------- #
#: sections that completed registration; a section that raised (e.g. an
#: ImportError on a broken install) is retried on the next lookup without
#: re-running completed ones.
_LOADED_SECTIONS: set[str] = set()


_POPULATING = False


def _ensure_builtins() -> None:
    """Populate the registries with the library's built-ins exactly once."""
    global _POPULATING
    if _POPULATING:
        return
    sections = (
        ("stages", _register_stage_builtins),
        ("condensers", _register_condenser_builtins),
        ("models", _register_model_builtins),
        ("datasets", _register_dataset_builtins),
    )
    _POPULATING = True
    try:
        for name, populate in sections:
            if name in _LOADED_SECTIONS:
                continue
            populate()
            _LOADED_SECTIONS.add(name)
    finally:
        _POPULATING = False


def _register_builtin(
    registry: Registry, name: str, obj: object, *, aliases: tuple[str, ...] = ()
) -> None:
    """Register a built-in, yielding to names already taken.

    A caller may register a component under a built-in name *before* the
    first lookup triggers population; built-ins must neither clobber that
    registration nor wedge the whole registry on the collision — the
    earlier registration simply shadows the built-in.
    """
    key = Registry._normalize(name)
    if key not in registry._entries and key not in registry._aliases:
        registry._entries[key] = obj
    if key not in registry._entries:
        return  # name shadowed by a user alias: nothing to alias against
    for alias in aliases:
        alias_key = Registry._normalize(alias)
        if alias_key not in registry._entries and alias_key not in registry._aliases:
            registry._aliases[alias_key] = key


def _register_stage_builtins() -> None:
    # Importing the module runs its @register decorators.
    import repro.core.stages  # noqa: F401


def _register_condenser_builtins() -> None:
    from repro.baselines import CoarseningHG, GCond, HerdingHG, HGCond, KCenterHG, RandomHG
    from repro.core.condenser import FreeHGC

    def freehgc(*, max_hops: int = 2, fast_optimization: bool = True, **overrides: object):
        return FreeHGC(max_hops=max_hops, **overrides)

    def random_hg(*, max_hops: int = 2, fast_optimization: bool = True, **overrides: object):
        return RandomHG(**overrides)

    def herding_hg(*, max_hops: int = 2, fast_optimization: bool = True, **overrides: object):
        return HerdingHG(max_hops=min(max_hops, 2), **overrides)

    def kcenter_hg(*, max_hops: int = 2, fast_optimization: bool = True, **overrides: object):
        return KCenterHG(max_hops=min(max_hops, 2), **overrides)

    def coarsening_hg(*, max_hops: int = 2, fast_optimization: bool = True, **overrides: object):
        return CoarseningHG(max_hops=min(max_hops, 2), **overrides)

    def gcond(*, max_hops: int = 2, fast_optimization: bool = True, **overrides: object):
        iterations: dict[str, object] = (
            {"outer_iterations": 15, "inner_steps": 3} if fast_optimization else {}
        )
        iterations.update(overrides)
        return GCond(max_hops=min(max_hops, 2), **iterations)

    def hgcond(*, max_hops: int = 2, fast_optimization: bool = True, **overrides: object):
        iterations: dict[str, object] = (
            {"outer_iterations": 10, "inner_steps": 3, "ops_length": 2}
            if fast_optimization
            else {}
        )
        iterations.update(overrides)
        return HGCond(**iterations)

    _register_builtin(condensers, "freehgc", freehgc, aliases=("free-hgc",))
    _register_builtin(condensers, "random-hg", random_hg, aliases=("random",))
    _register_builtin(condensers, "herding-hg", herding_hg, aliases=("herding",))
    _register_builtin(condensers, "k-center-hg", kcenter_hg, aliases=("kcenter", "k-center"))
    _register_builtin(condensers, "coarsening-hg", coarsening_hg, aliases=("coarsening",))
    _register_builtin(condensers, "gcond", gcond)
    _register_builtin(condensers, "hgcond", hgcond)


def _register_model_builtins() -> None:
    from repro.models import MODEL_REGISTRY

    aliases = {
        "heterosgc": ("hetero-sgc", "sgc"),
        "sehgnn": ("se-hgnn",),
    }
    for name, model_cls in MODEL_REGISTRY.items():
        _register_builtin(models, name, model_cls, aliases=aliases.get(name, ()))


def _register_dataset_builtins() -> None:
    from repro.datasets.registry import DATASETS

    aliases = {
        "freebase": ("fb",),
    }
    for name, entry in DATASETS.items():
        _register_builtin(datasets, name, entry, aliases=aliases.get(name, ()))
