"""Incremental condensation for evolving heterogeneous graphs.

The paper condenses a *static* graph once; a production deployment sees the
graph change continuously.  This package provides the streaming layer on
top of the condensation core:

* :class:`~repro.streaming.delta.GraphDelta` — one batched update (edge and
  node insertions/removals) with stable node-id semantics;
* :class:`~repro.streaming.apply.DeltaApplier` — applies a delta to a live
  :class:`~repro.hetero.graph.HeteroGraph`, invalidates exactly the
  affected :class:`~repro.core.context.CondensationContext` memos, and
  reports the delta's **dirty target set** (the sound over-approximation
  of feature-changed targets that drives the serving layer's
  prediction-cache invalidation, see :mod:`repro.serving`);
* :class:`~repro.streaming.warmstart.SelectionMemo` /
  :func:`~repro.streaming.warmstart.warm_start_coverage` — byte-exact
  warm starts of the greedy coverage kernel from the previous selection;
* :class:`~repro.streaming.incremental.IncrementalCondenser` — the driver:
  apply, invalidate, re-condense, with a ``recondense_threshold`` fallback
  to full condensation for large deltas.

``python -m repro stream`` replays a synthetic delta schedule through this
machinery and ``benchmarks/bench_streaming.py`` gates that the incremental
output is byte-identical to full recondensation at every checkpoint.
"""

from repro.streaming.apply import ApplyReport, DeltaApplier
from repro.streaming.delta import DeltaValidationError, GraphDelta
from repro.streaming.incremental import (
    GraphMismatchError,
    IncrementalCondenser,
    StageMemo,
    StepReport,
    assert_graphs_equal,
    graphs_equal,
)
from repro.streaming.warmstart import SelectionMemo, changed_rows, warm_start_coverage

__all__ = [
    "ApplyReport",
    "DeltaApplier",
    "DeltaValidationError",
    "GraphDelta",
    "GraphMismatchError",
    "IncrementalCondenser",
    "SelectionMemo",
    "StageMemo",
    "StepReport",
    "assert_graphs_equal",
    "changed_rows",
    "graphs_equal",
    "warm_start_coverage",
]
