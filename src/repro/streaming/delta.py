"""The :class:`GraphDelta` value object: one batched update to an evolving graph.

A delta describes, per relation and per node type, what changed between two
observations of a production graph: edges appeared or disappeared, nodes
arrived (new papers, actors, products) or left.  Deltas are *plain data* —
applying one is the job of :class:`repro.streaming.apply.DeltaApplier` — so
a timestamped sequence of deltas (a *schedule*) can be generated, stored and
replayed deterministically.

Node-id semantics are chosen so that ids remain stable across deltas, which
is what lets the incremental condenser compare selections between steps:

* **inserted nodes** are appended after the existing ids of their type (a
  delta adding ``k`` nodes of a type with ``n`` nodes creates ids
  ``n .. n+k-1``);
* **removed nodes** become *tombstones*: every incident edge is deleted and
  their features zeroed, but the id slot survives (re-indexing every
  adjacency on each departure would invalidate all downstream state).
  Removed target nodes additionally leave the train/val/test splits and
  have their label cleared to ``-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.hetero.graph import HeteroGraph

__all__ = ["GraphDelta", "DeltaValidationError"]


class DeltaValidationError(ReproError, ValueError):
    """A :class:`GraphDelta` is inconsistent with the graph it targets."""


def _as_edge_pairs(value) -> tuple[np.ndarray, np.ndarray]:
    src, dst = value
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise DeltaValidationError("edge src/dst arrays must have the same length")
    return src, dst


@dataclass(frozen=True)
class GraphDelta:
    """A batched set of node/edge insertions and removals.

    Attributes
    ----------
    add_edges / remove_edges:
        Mapping ``relation name -> (src ids, dst ids)``.  Additions that
        already exist and removals that do not are ignored (idempotent
        set semantics, matching the unit-weight adjacencies this library
        uses everywhere).
    add_nodes:
        Mapping ``node type -> feature matrix`` of shape ``(k, feature_dim)``;
        the ``k`` new nodes are appended after the existing ids.
    add_labels:
        Labels of newly added *target-type* nodes (required exactly when the
        target type appears in ``add_nodes``).
    add_split:
        Which split newly added target nodes join (``"train"``, ``"val"``,
        ``"test"``); production streams usually feed ``"test"``.
    remove_nodes:
        Mapping ``node type -> node ids`` to tombstone (see module docs).
    step:
        Optional timestamp/sequence number carried through reports.
    metadata:
        Free-form JSON-compatible annotations (source system, ingest batch
        id, operator notes).  Never interpreted by the applier; carried
        through :meth:`to_payload` only when non-empty so payloads written
        by older producers keep their exact shape.
    """

    add_edges: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    remove_edges: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    add_nodes: dict[str, np.ndarray] = field(default_factory=dict)
    add_labels: np.ndarray | None = None
    add_split: str = "test"
    remove_nodes: dict[str, np.ndarray] = field(default_factory=dict)
    step: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.metadata, dict):
            raise DeltaValidationError("metadata must be a JSON object (dict)")
        object.__setattr__(
            self, "add_edges", {name: _as_edge_pairs(v) for name, v in self.add_edges.items()}
        )
        object.__setattr__(
            self,
            "remove_edges",
            {name: _as_edge_pairs(v) for name, v in self.remove_edges.items()},
        )
        object.__setattr__(
            self,
            "add_nodes",
            {
                t: np.asarray(feats, dtype=np.float64)
                for t, feats in self.add_nodes.items()
            },
        )
        object.__setattr__(
            self,
            "remove_nodes",
            {
                t: np.unique(np.asarray(ids, dtype=np.int64))
                for t, ids in self.remove_nodes.items()
            },
        )
        if self.add_labels is not None:
            object.__setattr__(
                self, "add_labels", np.asarray(self.add_labels, dtype=np.int64)
            )
        if self.add_split not in ("train", "val", "test"):
            raise DeltaValidationError(
                f"add_split must be 'train', 'val' or 'test', got {self.add_split!r}"
            )
        for node_type, feats in self.add_nodes.items():
            if feats.ndim != 2:
                raise DeltaValidationError(
                    f"add_nodes[{node_type!r}] must be a 2-D feature matrix"
                )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return not (
            any(src.size for src, _ in self.add_edges.values())
            or any(src.size for src, _ in self.remove_edges.values())
            or any(feats.shape[0] for feats in self.add_nodes.values())
            or any(ids.size for ids in self.remove_nodes.values())
        )

    def num_edge_changes(self, graph: HeteroGraph) -> int:
        """Edges this delta touches: explicit adds/removes plus the incident
        edges of every removed node (which all disappear)."""
        from repro.hetero.sparse import cached_csc

        total = sum(int(src.size) for src, _ in self.add_edges.values())
        total += sum(int(src.size) for src, _ in self.remove_edges.values())
        for node_type, ids in self.remove_nodes.items():
            # Ids added by this same delta (validate_against permits them)
            # have no incident edges in the current matrices.
            ids = ids[ids < graph.num_nodes[node_type]]
            if ids.size == 0:
                continue
            for name, matrix in graph.adjacency.items():
                rel = graph.schema.relation(name)
                if rel.src == node_type:
                    total += int(
                        (matrix.indptr[ids + 1] - matrix.indptr[ids]).sum()
                    )
                if rel.dst == node_type:
                    csc = cached_csc(matrix)
                    total += int((csc.indptr[ids + 1] - csc.indptr[ids]).sum())
        return total

    def edge_fraction(self, graph: HeteroGraph) -> float:
        """Touched edges as a fraction of the graph's current edge count."""
        total = graph.total_edges
        if total == 0:
            return 1.0 if not self.is_empty else 0.0
        return self.num_edge_changes(graph) / total

    def touched_relations(self) -> set[str]:
        """Relation names whose adjacency this delta edits directly."""
        return set(self.add_edges) | set(self.remove_edges)

    def touched_type_pairs(self, graph: HeteroGraph) -> set[tuple[str, str]]:
        """``(src, dst)`` node-type pairs whose combined adjacency changes."""
        pairs: set[tuple[str, str]] = set()
        for name in self.touched_relations():
            rel = graph.schema.relation(name)
            pairs.add((rel.src, rel.dst))
        for node_type, ids in self.remove_nodes.items():
            if ids.size == 0:
                continue
            for rel in graph.schema.relations:
                if node_type in (rel.src, rel.dst):
                    pairs.add((rel.src, rel.dst))
        return pairs

    def touched_node_types(self) -> set[str]:
        """Node types whose id space or feature matrix changes."""
        touched = {t for t, feats in self.add_nodes.items() if feats.shape[0]}
        touched |= {t for t, ids in self.remove_nodes.items() if ids.size}
        return touched

    # ------------------------------------------------------------------ #
    def validate_against(self, graph: HeteroGraph) -> None:
        """Raise :class:`DeltaValidationError` if the delta cannot apply to ``graph``.

        Edge endpoints may reference nodes *added by this same delta*
        (``id < current count + added count``), which is how a new paper
        arrives together with its authorship edges.
        """
        schema = graph.schema
        added = {t: feats.shape[0] for t, feats in self.add_nodes.items()}
        bounds = {
            t: graph.num_nodes[t] + added.get(t, 0) for t in schema.node_types
        }
        for label, edits in (("add_edges", self.add_edges), ("remove_edges", self.remove_edges)):
            for name, (src, dst) in edits.items():
                rel = schema.relation(name)  # raises SchemaError on unknown names
                for side, ids, bound in (
                    ("src", src, bounds[rel.src]),
                    ("dst", dst, bounds[rel.dst]),
                ):
                    if ids.size and (ids.min() < 0 or ids.max() >= bound):
                        raise DeltaValidationError(
                            f"{label}[{name!r}] {side} ids out of range "
                            f"(bound {bound})"
                        )
        for node_type, feats in self.add_nodes.items():
            if node_type not in schema.node_types:
                raise DeltaValidationError(f"unknown node type {node_type!r}")
            expected = graph.features[node_type].shape[1]
            if feats.shape[1] != expected:
                raise DeltaValidationError(
                    f"add_nodes[{node_type!r}] features have dim {feats.shape[1]}, "
                    f"graph has {expected}"
                )
        target = schema.target_type
        new_targets = added.get(target, 0)
        if new_targets:
            if self.add_labels is None or self.add_labels.shape != (new_targets,):
                raise DeltaValidationError(
                    f"adding {new_targets} target nodes requires add_labels of "
                    "matching length"
                )
            valid = self.add_labels[self.add_labels >= 0]
            if valid.size and valid.max() >= schema.num_classes:
                raise DeltaValidationError("add_labels out of class range")
        elif self.add_labels is not None and self.add_labels.size:
            raise DeltaValidationError("add_labels given without added target nodes")
        for node_type, ids in self.remove_nodes.items():
            if node_type not in schema.node_types:
                raise DeltaValidationError(f"unknown node type {node_type!r}")
            if ids.size and (ids.min() < 0 or ids.max() >= bounds[node_type]):
                raise DeltaValidationError(
                    f"remove_nodes[{node_type!r}] ids out of range"
                )

    # ------------------------------------------------------------------ #
    # JSON wire format (the serving server's ``POST /delta`` body)
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict:
        """Plain-JSON representation (lists instead of arrays).

        Round-trips exactly through :meth:`from_payload`; used by the
        serving server, the replicated tier's write-ahead log, and tooling
        that stores delta schedules as JSONL.
        """
        payload = {
            "step": int(self.step),
            "add_edges": {
                name: [src.tolist(), dst.tolist()]
                for name, (src, dst) in self.add_edges.items()
            },
            "remove_edges": {
                name: [src.tolist(), dst.tolist()]
                for name, (src, dst) in self.remove_edges.items()
            },
            "add_nodes": {
                # A (0, d) matrix serialises as [] — the feature dimension is
                # unrecoverable, so from_payload drops such entries.  Omit
                # them here too: absent and zero-row mean the same thing to
                # the applier, and the payload round-trips exactly.
                t: feats.tolist()
                for t, feats in self.add_nodes.items()
                if feats.shape[0]
            },
            "add_labels": None if self.add_labels is None else self.add_labels.tolist(),
            "add_split": self.add_split,
            "remove_nodes": {t: ids.tolist() for t, ids in self.remove_nodes.items()},
        }
        if self.metadata:
            payload["metadata"] = dict(self.metadata)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "GraphDelta":
        """Rebuild a delta from :meth:`to_payload` output (or hand-written JSON)."""
        if not isinstance(payload, dict):
            raise DeltaValidationError("delta payload must be a JSON object")
        add_nodes = {
            t: np.asarray(feats, dtype=np.float64)
            for t, feats in dict(payload.get("add_nodes", {})).items()
            if len(feats)  # empty additions carry no feature dimension: drop
        }
        labels = payload.get("add_labels")
        return cls(
            add_edges={
                name: (np.asarray(pair[0]), np.asarray(pair[1]))
                for name, pair in dict(payload.get("add_edges", {})).items()
            },
            remove_edges={
                name: (np.asarray(pair[0]), np.asarray(pair[1]))
                for name, pair in dict(payload.get("remove_edges", {})).items()
            },
            add_nodes=add_nodes,
            add_labels=None if labels is None else np.asarray(labels, dtype=np.int64),
            add_split=str(payload.get("add_split", "test")),
            remove_nodes={
                t: np.asarray(ids, dtype=np.int64)
                for t, ids in dict(payload.get("remove_nodes", {})).items()
            },
            step=int(payload.get("step", 0)),
            metadata=dict(payload.get("metadata", {})),
        )

    def summary(self) -> str:
        """One-line human-readable description."""
        adds = sum(int(s.size) for s, _ in self.add_edges.values())
        removes = sum(int(s.size) for s, _ in self.remove_edges.values())
        node_adds = sum(int(f.shape[0]) for f in self.add_nodes.values())
        node_removes = sum(int(i.size) for i in self.remove_nodes.values())
        return (
            f"GraphDelta(step={self.step}, +{adds}/-{removes} edges, "
            f"+{node_adds}/-{node_removes} nodes)"
        )
