"""Incremental condensation of an evolving heterogeneous graph.

:class:`IncrementalCondenser` owns a live graph, a long-lived
:class:`~repro.core.context.CondensationContext` and three layers of memos,
and re-condenses after every :class:`~repro.streaming.delta.GraphDelta`:

1. the **context** keeps every meta-path adjacency the delta did not touch
   (the :class:`~repro.streaming.apply.DeltaApplier` invalidates precisely);
2. the **selection memo** (:class:`~repro.streaming.warmstart.SelectionMemo`)
   keeps per-(meta-path, class) greedy coverage results and per-group
   similarity scores, warm-starting the greedy kernel on rebuilt paths;
3. the **stage memo** (:class:`StageMemo`) keeps whole stage results —
   target selection, per-father NIM selections, per-leaf syntheses — keyed
   by the identity of every input the stage reads, so an unchanged stage is
   not re-run at all.

All three layers only ever serve results whose inputs are *identical* to
the cached computation, so the condensed graph is **byte-identical** to a
full re-condensation of the mutated graph — the correctness gate of
``benchmarks/bench_streaming.py`` asserts exactly that at every checkpoint.

Deltas larger than ``recondense_threshold`` (touched-edge fraction) fall
back to a full recondensation: everything is dropped and rebuilt, which is
cheaper than patching when most paths are dirty anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro import obs
from repro.baselines.base import per_class_budgets  # noqa: F401  (re-export convenience)
from repro.core.condenser import FreeHGC
from repro.core.context import CondensationContext
from repro.core.criterion import TargetSelectionResult
from repro.core.metapaths import MetaPath
from repro.core.stages import StageResult
from repro.core.synthesis import SyntheticLeafNodes
from repro.hetero.graph import HeteroGraph
from repro.streaming.apply import ApplyReport, DeltaApplier
from repro.streaming.delta import GraphDelta
from repro.streaming.warmstart import SelectionMemo

__all__ = [
    "GraphMismatchError",
    "IncrementalCondenser",
    "StageMemo",
    "StepReport",
    "assert_graphs_equal",
    "graphs_equal",
]


# --------------------------------------------------------------------------- #
# Whole-stage memoization
# --------------------------------------------------------------------------- #
@dataclass
class _StageSlot:
    fingerprint: tuple
    #: strong references pinning the ids used in the fingerprint
    pins: tuple
    result: object


class StageMemo:
    """Serves cached stage results when a stage's inputs are unchanged.

    Fingerprints are built from the *identities* of the artifacts a stage
    reads — context-served meta-path adjacencies, the graph's relation
    matrices and feature blocks (all replaced, never edited, by the delta
    applier) — plus content digests of the small arrays (anchor, providers,
    labels, splits).  Identity is exact because the context and the applier
    replace objects precisely when the underlying data changed.  Stages
    with strategies the memo does not know are simply always re-run.
    """

    def __init__(self) -> None:
        self.stats = {
            "target_hits": 0,
            "target_misses": 0,
            "stage_hits": 0,
            "stage_misses": 0,
        }
        self._target: _StageSlot | None = None
        self._others: dict[tuple[str, str], _StageSlot] = {}

    def _note(self, key: str, **attrs) -> None:
        """Count a hit/miss and mirror it as a trace event when recording."""
        self.stats[key] += 1
        obs.event(f"memo.{key}", **attrs)

    def clear(self) -> None:
        """Drop every cached stage result."""
        self._target = None
        self._others.clear()

    # ------------------------------------------------------------------ #
    def select_target(self, stage, context: CondensationContext, budget: int):
        fingerprint_pins = self._target_fingerprint(stage, context, budget)
        if fingerprint_pins is None:
            self._note("target_misses")
            return stage.select_target(context, budget)
        fingerprint, pins = fingerprint_pins
        if self._target is not None and self._target.fingerprint == fingerprint:
            self._note("target_hits")
            return self._target.result
        outcome = stage.select_target(context, budget)
        self._target = _StageSlot(fingerprint, pins, outcome)
        self._note("target_misses")
        return outcome

    def _target_fingerprint(self, stage, context: CondensationContext, budget: int):
        if getattr(stage, "name", None) != "criterion":
            return None
        graph = context.graph
        metapaths = context.metapaths()
        adjacencies = [context.adjacency(path, normalize=False) for path in metapaths]
        fingerprint = (
            int(budget),
            bool(getattr(stage, "use_receptive_field", True)),
            bool(getattr(stage, "use_similarity", True)),
            id(graph.labels),
            id(graph.splits.train),
            int(graph.num_nodes[context.target_type]),
            tuple(id(a) for a in adjacencies),
        )
        return fingerprint, (graph.labels, graph.splits.train, tuple(adjacencies))

    # ------------------------------------------------------------------ #
    def condense_type(
        self,
        stage,
        context: CondensationContext,
        role: str,
        node_type: str,
        budget: int,
        *,
        anchor: np.ndarray | None = None,
        providers=None,
    ) -> StageResult:
        fingerprint_pins = self._other_fingerprint(
            stage, context, node_type, budget, anchor, providers
        )
        if fingerprint_pins is None:
            self._note("stage_misses", node_type=node_type)
            return stage.condense_type(
                context, node_type, budget, anchor=anchor, providers=providers
            )
        fingerprint, pins = fingerprint_pins
        key = (str(getattr(stage, "name", "?")), node_type)
        slot = self._others.get(key)
        if slot is not None and slot.fingerprint == fingerprint:
            self._note("stage_hits", node_type=node_type)
            return slot.result
        result = stage.condense_type(
            context, node_type, budget, anchor=anchor, providers=providers
        )
        self._others[key] = _StageSlot(fingerprint, pins, result)
        self._note("stage_misses", node_type=node_type)
        return result

    @staticmethod
    def _providers_digest(providers) -> tuple | None:
        if providers is None:
            return ()
        digest: list[tuple] = []
        for name in sorted(providers):
            provider = providers[name]
            if isinstance(provider, SyntheticLeafNodes):
                digest.append((name, "synthetic", id(provider)))
            else:
                digest.append(
                    (name, "selected", np.asarray(provider, dtype=np.int64).tobytes())
                )
        return tuple(digest)

    def _other_fingerprint(
        self, stage, context: CondensationContext, node_type: str, budget: int, anchor, providers
    ):
        name = getattr(stage, "name", None)
        graph = context.graph
        # NIM consumes the anchor as a 0/1 restart mask, so only the *set*
        # of anchor nodes matters — two selections that rank the same nodes
        # differently produce the identical mask.
        anchor_digest = (
            None
            if anchor is None
            else np.unique(np.asarray(anchor, dtype=np.int64)).tobytes()
        )
        if name == "nim":
            target = context.target_type
            paths = context.metapaths_to(node_type) or [MetaPath((target, node_type))]
            adjacencies = tuple(
                context.adjacency(path, normalize=False) for path in paths
            )
            fingerprint = (
                "nim",
                int(budget),
                anchor_digest,
                int(graph.num_nodes[target]),
                int(graph.num_nodes[node_type]),
                tuple(id(a) for a in adjacencies),
            )
            return fingerprint, (adjacencies,)
        if name == "herding":
            embeddings = context.other_type_embeddings(node_type)
            return ("herding", int(budget), id(embeddings)), (embeddings,)
        if name == "ilm":
            incident = tuple(
                graph.adjacency[rel_name]
                for rel_name in sorted(graph.adjacency)
                if node_type
                in (
                    graph.schema.relation(rel_name).src,
                    graph.schema.relation(rel_name).dst,
                )
            )
            features = graph.features[node_type]
            fingerprint = (
                "ilm",
                int(budget),
                self._providers_digest(providers),
                id(features),
                tuple(id(m) for m in incident),
                tuple(sorted(graph.num_nodes.items())),
            )
            return fingerprint, (incident, features)
        return None


# --------------------------------------------------------------------------- #
# Step reports and graph equality
# --------------------------------------------------------------------------- #
@dataclass
class StepReport:
    """Outcome of one :meth:`IncrementalCondenser.step`."""

    step: int
    #: ``"full"`` (cold start or threshold fallback) or ``"incremental"``
    mode: str
    #: touched-edge fraction of the delta (pre-application)
    edge_fraction: float
    condense_seconds: float
    condensed: HeteroGraph
    apply_report: ApplyReport | None = None
    #: |previous Δ current| of the condensed target-node selection
    selection_drift: int = 0
    memo_stats: dict[str, int] = field(default_factory=dict)


class GraphMismatchError(AssertionError):
    """Two graphs that must be byte-identical differ.

    Subclasses ``AssertionError`` for backward compatibility with callers
    that catch it, but is *raised explicitly* — the byte-identity gate this
    backs (benchmarks, the ``stream --verify-every`` CLI) keeps working
    under ``python -O``, which strips ``assert`` statements.
    """


def graphs_equal(first: HeteroGraph, second: HeteroGraph) -> bool:
    """True iff two graphs are byte-identical (structure, values, splits)."""
    try:
        assert_graphs_equal(first, second)
    except GraphMismatchError:
        return False
    return True


def assert_graphs_equal(first: HeteroGraph, second: HeteroGraph) -> None:
    """Raise :class:`GraphMismatchError` naming the first difference."""

    def check(condition: bool, message: str) -> None:
        if not condition:
            raise GraphMismatchError(message)

    check(first.schema.node_types == second.schema.node_types, "node types differ")
    check(
        first.num_nodes == second.num_nodes,
        f"node counts differ: {first.num_nodes} vs {second.num_nodes}",
    )
    check(np.array_equal(first.labels, second.labels), "labels differ")
    for split in ("train", "val", "test"):
        check(
            np.array_equal(getattr(first.splits, split), getattr(second.splits, split)),
            f"{split} split differs",
        )
    for node_type in first.schema.node_types:
        check(
            np.array_equal(first.features[node_type], second.features[node_type]),
            f"features of {node_type!r} differ",
        )
    check(set(first.adjacency) == set(second.adjacency), "relation sets differ")
    for name in first.adjacency:
        a, b = first.adjacency[name].tocsr(), second.adjacency[name].tocsr()
        check(a.shape == b.shape, f"adjacency {name!r} shapes differ")
        check(a.nnz == b.nnz and (a != b).nnz == 0, f"adjacency {name!r} differs")


# --------------------------------------------------------------------------- #
# The incremental condenser
# --------------------------------------------------------------------------- #
class IncrementalCondenser:
    """Warm-started condensation over a stream of graph deltas.

    Parameters
    ----------
    graph:
        The live graph.  The condenser owns it: :meth:`step` mutates it in
        place through the :class:`~repro.streaming.apply.DeltaApplier`.
    condenser:
        The :class:`~repro.core.condenser.FreeHGC` configuration to run
        (default: ``FreeHGC()``).
    ratio:
        Condensation ratio applied at every step.
    recondense_threshold:
        Deltas touching more than this fraction of the graph's edges drop
        every memo and re-condense from scratch (patching would touch most
        artifacts anyway).  ``0`` forces a full recondense on every step;
        ``1`` never falls back.
    seed:
        Seed forwarded to every ``condense`` call (the FreeHGC stages are
        deterministic; the seed only matters for custom stage plugins).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import FreeHGC
    >>> from repro.datasets import load_acm
    >>> from repro.streaming import GraphDelta, IncrementalCondenser
    >>> inc = IncrementalCondenser(load_acm(scale=0.2, seed=0),
    ...                            condenser=FreeHGC(max_hops=2), ratio=0.2)
    >>> base = inc.condense()                    # cold full condensation
    >>> delta = GraphDelta(remove_edges={"paper-term": (np.array([0]), np.array([0]))})
    >>> report = inc.step(delta)
    >>> report.mode
    'incremental'
    >>> report.condensed.schema.target_type
    'paper'
    """

    def __init__(
        self,
        graph: HeteroGraph,
        *,
        condenser: FreeHGC | None = None,
        ratio: float,
        recondense_threshold: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= recondense_threshold <= 1.0:
            raise ValueError(
                f"recondense_threshold must be in [0, 1], got {recondense_threshold}"
            )
        self.graph = graph
        self.condenser = condenser if condenser is not None else FreeHGC()
        self.ratio = float(ratio)
        self.recondense_threshold = float(recondense_threshold)
        self.seed = int(seed)
        self.applier = DeltaApplier()
        self.selection_memo = SelectionMemo()
        self.stage_memo = StageMemo()
        self._context: CondensationContext | None = None
        self._steps = 0
        self._previous_selection: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @property
    def context(self) -> CondensationContext:
        """The live shared context (created on first use)."""
        if self._context is None:
            self._context = CondensationContext(
                self.graph,
                max_hops=self.condenser.max_hops,
                max_paths=self.condenser.max_paths,
            )
            self._context.selection_memo = self.selection_memo
        return self._context

    def invalidate(self) -> None:
        """Drop the context and every memo (next condense is cold)."""
        self._context = None
        self.selection_memo.clear()
        self.stage_memo.clear()

    # ------------------------------------------------------------------ #
    def condense(self) -> HeteroGraph:
        """Condense the current graph, reusing whatever is still valid."""
        condensed = self.condenser.condense(
            self.graph,
            self.ratio,
            seed=self.seed,
            context=self.context,
            stage_memo=self.stage_memo,
        )
        self._previous_selection = self._selected_targets()
        return condensed

    def step(self, delta: GraphDelta) -> StepReport:
        """Apply ``delta``, re-condense, and report what happened."""
        with obs.span("stream.step", step=int(delta.step)):
            return self._step(delta)

    def _step(self, delta: GraphDelta) -> StepReport:
        fraction = delta.edge_fraction(self.graph)
        incremental = (
            self._context is not None and fraction <= self.recondense_threshold
        )
        if incremental:
            apply_report = self.applier.apply(
                self.graph, delta, context=self._context, edge_fraction=fraction
            )
            mode = "incremental"
        else:
            apply_report = self.applier.apply(
                self.graph, delta, edge_fraction=fraction
            )
            self.invalidate()
            mode = "full"

        obs.event("stream.mode", mode=mode, edge_fraction=round(fraction, 6))
        previous = self._previous_selection
        start = perf_counter()
        condensed = self.condense()
        elapsed = perf_counter() - start

        selection = self._previous_selection
        drift = 0
        if previous is not None and selection is not None:
            drift = int(
                np.setdiff1d(selection, previous).size
                + np.setdiff1d(previous, selection).size
            )
        self._steps += 1
        return StepReport(
            step=delta.step,
            mode=mode,
            edge_fraction=fraction,
            condense_seconds=elapsed,
            condensed=condensed,
            apply_report=apply_report,
            selection_drift=drift,
            memo_stats={**self.selection_memo.stats, **self.stage_memo.stats},
        )

    def _selected_targets(self) -> np.ndarray | None:
        outcome = self.condenser.last_target_selection
        if isinstance(outcome, TargetSelectionResult):
            return np.unique(outcome.selected)
        return None
