"""Warm-started greedy coverage and the per-selection memo.

The expensive inner loop of the unified criterion is one exact greedy
max-coverage run per (meta-path, class).  After a small graph delta most of
those runs see *exactly* the inputs they saw last time — and the rest see an
adjacency in which only a few rows changed.  This module exploits both:

* :class:`SelectionMemo` caches each meta-path's per-class coverage results,
  score vector and each similarity group's scores, keyed by the *identity*
  of the adjacency objects served by the shared
  :class:`~repro.core.context.CondensationContext`.  Because the context's
  invalidation is precise (only touched paths are rebuilt), identity is an
  exact staleness signal.
* :func:`warm_start_coverage` re-derives a greedy selection on a rebuilt
  adjacency by **replaying the previous selection**: a round's winner is
  provably unchanged while every previously selected node and the round
  winner are *clean* (rows unchanged by the delta) and no *dirty* candidate
  — re-evaluated exactly, through the packed words — can beat the recorded
  gain under the (gain, lowest-id) order.  At the first round where that
  certificate fails, the replay hands the exact mid-run state to the shared
  batched-CELF loop (:func:`~repro.core.coverage_kernels._packed_greedy_loop`).

Both paths return selections **byte-identical** to a from-scratch
:func:`~repro.core.receptive_field.greedy_max_coverage` — the replay only
skips work whose outcome is forced, and the continuation runs the very same
kernel loop.  The property suite verifies this on randomly perturbed graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.core.coverage_kernels import (
    DEFAULT_BATCH_SIZE,
    CoverageResult,
    PackedAdjacency,
    _packed_greedy_loop,
)
from repro.core.metapaths import MetaPath
from repro.core.receptive_field import greedy_max_coverage

__all__ = ["SelectionMemo", "changed_rows", "warm_start_coverage"]


def changed_rows(old: sp.csr_matrix, new: sp.csr_matrix) -> np.ndarray:
    """Rows whose sparsity pattern differs between ``old`` and ``new``.

    Supports row growth (new rows are reported as changed); the column count
    may also grow — a column index present in neither pattern cannot affect
    equality.  Patterns are compared with set semantics, so both inputs must
    have sorted, duplicate-free indices (everything the meta-path machinery
    produces is canonical; non-canonical inputs are sorted on a copy).
    """
    from repro.streaming.patch import mismatched_row_positions

    if not old.has_canonical_format:
        old = old.copy()
        old.sum_duplicates()
    if not new.has_canonical_format:
        new = new.copy()
        new.sum_duplicates()
    n_common = min(old.shape[0], new.shape[0])
    common = np.arange(n_common, dtype=np.int64)
    dirty_parts = [mismatched_row_positions(old, common, new, common)]
    if new.shape[0] > n_common:
        dirty_parts.append(np.arange(n_common, new.shape[0], dtype=np.int64))
    return np.unique(np.concatenate(dirty_parts))


@obs.traced("stream.warm_start_coverage")
def warm_start_coverage(
    adjacency: sp.csr_matrix,
    pool: np.ndarray,
    budget: int,
    previous: CoverageResult,
    dirty: np.ndarray,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> CoverageResult:
    """Greedy max coverage on ``adjacency``, warm-started from ``previous``.

    ``previous`` must be the exact greedy result for the *same pool and
    budget* on an earlier version of the adjacency, and ``dirty`` a superset
    of the rows whose receptive field changed since.  The result is
    byte-identical to ``greedy_max_coverage(adjacency, pool, budget)``.
    """
    pool = np.asarray(pool, dtype=np.int64)
    budget = int(min(budget, pool.size))
    if budget <= 0:
        return CoverageResult(np.empty(0, dtype=np.int64), np.empty(0), 0, 0)
    candidates = np.unique(pool)
    dirty = np.asarray(dirty, dtype=np.int64)
    dirty_candidates = np.intersect1d(dirty, candidates)
    if dirty_candidates.size == 0 and previous.selected.size and not np.isin(
        previous.selected, dirty
    ).any():
        # No candidate's receptive field changed: the greedy trajectory is
        # untouched, unless the previous run stopped early on exhausted
        # gains and the budget is not yet met (then clean gains are still
        # exhausted — selection cannot grow either).  Reuse wholesale.
        return previous

    packed = PackedAdjacency.from_csr_cached(adjacency)
    dirty_set = set(int(node) for node in dirty_candidates)
    dirty_alive = dirty_candidates.copy()
    covered = packed.empty_cover()
    selected: list[int] = []
    gains: list[float] = []
    evaluations = 0
    diverged = False

    # Exact initial gains of the dirty candidates; afterwards maintained as
    # upper bounds (coverage is submodular, gains only shrink), CELF-style:
    # a dirty candidate is only re-evaluated when its bound could still win
    # the round under the (gain, lowest-id) order.
    if dirty_alive.size:
        dirty_bounds = packed.marginal_gains(dirty_alive, covered)
        evaluations += int(dirty_alive.size)
    else:
        dirty_bounds = np.empty(0, dtype=np.int64)

    for position in range(previous.selected.size):
        if len(selected) == budget:
            break
        winner = int(previous.selected[position])
        winner_gain = int(previous.gains[position])
        if winner in dirty_set:
            diverged = True
            break
        contenders = np.flatnonzero(
            (dirty_bounds > winner_gain)
            | ((dirty_bounds == winner_gain) & (dirty_alive < winner))
        )
        if contenders.size:
            fresh = packed.marginal_gains(dirty_alive[contenders], covered)
            evaluations += int(contenders.size)
            dirty_bounds[contenders] = fresh
            best = int(fresh.max())
            if best > winner_gain or (
                best == winner_gain
                and int(dirty_alive[contenders][fresh == best].min()) < winner
            ):
                diverged = True
                break
        selected.append(winner)
        gains.append(float(winner_gain))
        packed.add_to_cover(winner, covered)

    if not diverged and len(selected) == budget:
        # Full replay: identical trajectory.  Every selected row is clean,
        # so the union of their receptive fields — previous.covered — is
        # unchanged too.
        return CoverageResult(
            selected=previous.selected.copy(),
            gains=previous.gains.copy(),
            covered=previous.covered,
            evaluations=evaluations,
        )

    # Continuation: exact gains for every remaining candidate, then the
    # shared batched-CELF loop finishes the selection.
    alive = ~np.isin(candidates, np.asarray(selected, dtype=np.int64))
    upper = np.full(candidates.size, -1, dtype=np.int64)
    remaining = np.flatnonzero(alive)
    if remaining.size:
        upper[remaining] = packed.marginal_gains(candidates[remaining], covered)
        evaluations += int(remaining.size)
    return _packed_greedy_loop(
        packed,
        candidates,
        upper,
        alive,
        covered,
        selected,
        gains,
        budget,
        lazy=True,
        batch_size=batch_size,
        evaluations=evaluations,
        round_id=len(selected),
    )


# --------------------------------------------------------------------------- #
# Selection memo (installed on the shared context by IncrementalCondenser)
# --------------------------------------------------------------------------- #
@dataclass
class _PathSlot:
    """Cached coverage state of one meta-path."""

    adjacency: sp.csr_matrix
    class_pools: dict[int, np.ndarray]
    budgets: tuple[tuple[int, int], ...]
    normalizer: float
    n_target: int
    scores: np.ndarray
    evaluations: int
    per_class: dict[int, CoverageResult] = field(default_factory=dict)


@dataclass
class _GroupSlot:
    """Cached similarity state of one meta-path group.

    ``sizes`` are the per-position row-size vectors, ``pair_sims`` maps a
    position pair ``(i, j)`` to its intersection-count and Jaccard vectors.
    Sizes, intersections and unions of unit-weight boolean adjacencies are
    exact small integers, so a pair whose dirty rows are known can be
    *patched* — only the dirty entries are recounted — and still match a
    full recomputation bit-for-bit.
    """

    adjacencies: list[sp.csr_matrix]
    scores: np.ndarray
    sizes: list[np.ndarray]
    pair_sims: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )


class SelectionMemo:
    """Per-(meta-path, class) coverage and per-group similarity cache.

    Installed as ``context.selection_memo`` by the incremental condenser;
    :meth:`~repro.core.criterion.TargetNodeSelector.select` consults it when
    present.  Three outcomes per meta-path, counted in :attr:`stats`:

    ``hits``
        The adjacency object and the class pools/budgets are unchanged —
        the cached score vector is returned as-is.
    ``warm_starts``
        The adjacency was rebuilt (context invalidation) but pools/budgets
        match — each class's greedy run is replayed from its previous
        result via :func:`warm_start_coverage` against the changed rows.
    ``misses``
        Pools or budgets changed (labels/splits delta, new budget) — the
        coverage runs from scratch, exactly as the memo-less criterion.
    """

    def __init__(self) -> None:
        self._paths: dict[tuple[str, ...], _PathSlot] = {}
        self._groups: dict[str, _GroupSlot] = {}
        self.stats = {
            "hits": 0,
            "warm_starts": 0,
            "misses": 0,
            "group_hits": 0,
            "pair_hits": 0,
        }
        #: (old, new) object pairs -> changed rows, shared by the coverage
        #: warm start and the pair-Jaccard patching
        self._dirty_cache: dict[tuple[int, int], tuple[object, object, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    @staticmethod
    def _pools_match(slot: _PathSlot, class_pools, budgets) -> bool:
        if slot.budgets != budgets or set(slot.class_pools) != set(class_pools):
            return False
        return all(
            np.array_equal(slot.class_pools[cls], class_pools[cls])
            for cls in class_pools
        )

    def path_coverage(
        self,
        metapath: MetaPath,
        adjacency: sp.csr_matrix,
        class_pools: dict[int, np.ndarray],
        class_budgets: dict[int, int],
        normalizer: float,
        n_target: int,
    ) -> tuple[np.ndarray, int]:
        """Coverage score vector of one meta-path (cached / warm / fresh).

        Mirrors the criterion's inner loop bit-for-bit: the returned vector
        is ``sum over classes of scores[selected] += gains / normalizer``.
        """
        key = metapath.node_types
        budgets = tuple(sorted((int(c), int(b)) for c, b in class_budgets.items()))
        slot = self._paths.get(key)
        if (
            slot is not None
            and slot.adjacency is adjacency
            and slot.normalizer == normalizer
            and slot.n_target == n_target
            and self._pools_match(slot, class_pools, budgets)
        ):
            self.stats["hits"] += 1
            return slot.scores, slot.evaluations

        warm = (
            slot is not None
            and slot.adjacency is not adjacency
            and slot.n_target == n_target
            and slot.normalizer == normalizer
            and self._pools_match(slot, class_pools, budgets)
        )
        dirty = self._changed_rows_cached(slot.adjacency, adjacency) if warm else None

        scores = np.zeros(n_target, dtype=np.float64)
        evaluations = 0
        per_class: dict[int, CoverageResult] = {}
        for cls, cls_budget in class_budgets.items():
            cls_pool = class_pools[cls]
            if cls_pool.size == 0:
                continue
            previous = slot.per_class.get(cls) if warm else None
            if previous is not None:
                result = warm_start_coverage(
                    adjacency, cls_pool, cls_budget, previous, dirty
                )
            else:
                result = greedy_max_coverage(adjacency, cls_pool, cls_budget)
            per_class[cls] = result
            evaluations += result.evaluations
            if result.selected.size:
                scores[result.selected] += result.gains / normalizer
        self.stats["warm_starts" if warm else "misses"] += 1
        self._paths[key] = _PathSlot(
            adjacency=adjacency,
            class_pools={cls: pool.copy() for cls, pool in class_pools.items()},
            budgets=budgets,
            normalizer=normalizer,
            n_target=n_target,
            scores=scores,
            evaluations=evaluations,
            per_class=per_class,
        )
        return scores, evaluations

    # ------------------------------------------------------------------ #
    def _changed_rows_cached(self, old: sp.csr_matrix, new: sp.csr_matrix):
        """Memoized :func:`changed_rows` keyed by the object pair."""
        key = (id(old), id(new))
        hit = self._dirty_cache.get(key)
        if hit is not None and hit[0] is old and hit[1] is new:
            return hit[2]
        if len(self._dirty_cache) > 64:
            self._dirty_cache.clear()
        rows = changed_rows(old, new)
        self._dirty_cache[key] = (old, new, rows)
        return rows

    def group_similarity(
        self, end_type: str, adjacencies: list[sp.csr_matrix]
    ) -> np.ndarray:
        """Ĵ scores of one similarity group, reusing unchanged pairs.

        Bit-for-bit equal to
        :func:`~repro.core.similarity.metapath_similarity_scores` on the
        same adjacencies: sizes, intersections and unions of unit-weight
        boolean adjacencies are exact integers, so an unchanged pair is
        served from the memo and a pair with known dirty rows is patched —
        only the dirty entries are recounted — before the identical
        accumulation.
        """
        from repro.hetero.sparse import boolean_csr

        slot = self._groups.get(end_type)
        if (
            slot is not None
            and len(slot.adjacencies) == len(adjacencies)
            and all(a is b for a, b in zip(slot.adjacencies, adjacencies))
        ):
            self.stats["group_hits"] += 1
            return slot.scores

        num_paths = len(adjacencies)
        num_nodes = adjacencies[0].shape[0]
        patchable = (
            slot is not None
            and len(slot.adjacencies) == num_paths
            and all(a.shape == b.shape for a, b in zip(slot.adjacencies, adjacencies))
        )
        boolean = [boolean_csr(adjacency) for adjacency in adjacencies]
        dirty: list[np.ndarray | None] = [None] * num_paths
        sizes: list[np.ndarray] = []
        for position in range(num_paths):
            old = slot.adjacencies[position] if patchable else None
            new = adjacencies[position]
            if patchable and old is not new:
                rows = self._changed_rows_cached(old, new)
                dirty[position] = rows
                patched_sizes = slot.sizes[position].copy()
                patched_sizes[rows] = np.diff(new.indptr).astype(np.float64)[rows]
                sizes.append(patched_sizes)
            elif patchable:
                sizes.append(slot.sizes[position])
            else:
                sizes.append(np.asarray(boolean[position].sum(axis=1)).ravel())

        scores = np.zeros((num_nodes, num_paths), dtype=np.float64)
        pair_sims: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        for i in range(num_paths):
            for j in range(i + 1, num_paths):
                previous = slot.pair_sims.get((i, j)) if patchable else None
                if previous is not None and dirty[i] is None and dirty[j] is None:
                    intersection, similarity = previous
                    self.stats["pair_hits"] += 1
                elif previous is not None:
                    rows = np.union1d(
                        dirty[i] if dirty[i] is not None else np.empty(0, np.int64),
                        dirty[j] if dirty[j] is not None else np.empty(0, np.int64),
                    ).astype(np.int64)
                    intersection, similarity = previous[0].copy(), previous[1].copy()
                    if rows.size:
                        block = boolean[i][rows].multiply(boolean[j][rows])
                        intersection[rows] = np.asarray(block.sum(axis=1)).ravel()
                        union = sizes[i][rows] + sizes[j][rows] - intersection[rows]
                        patched = np.ones(rows.size, dtype=np.float64)
                        positive = union > 0
                        patched[positive] = intersection[rows][positive] / union[positive]
                        similarity[rows] = patched
                    self.stats["pair_hits"] += 1
                else:
                    # Inline _row_jaccard so the intersection counts can be
                    # kept for future patching (identical operations).
                    intersection = np.asarray(
                        boolean[i].multiply(boolean[j]).sum(axis=1)
                    ).ravel()
                    union = sizes[i] + sizes[j] - intersection
                    similarity = np.ones(num_nodes, dtype=np.float64)
                    positive = union > 0
                    similarity[positive] = intersection[positive] / union[positive]
                pair_sims[(i, j)] = (intersection, similarity)
                scores[:, i] += similarity
                scores[:, j] += similarity
        if num_paths > 1:
            scores /= num_paths - 1
        self._groups[end_type] = _GroupSlot(list(adjacencies), scores, sizes, pair_sims)
        return scores

    def clear(self) -> None:
        """Drop everything (used by the full-recondense fallback)."""
        self._paths.clear()
        self._groups.clear()
        self._dirty_cache.clear()
