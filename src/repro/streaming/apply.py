"""Applying a :class:`~repro.streaming.delta.GraphDelta` to a live graph.

:class:`DeltaApplier` mutates a :class:`~repro.hetero.graph.HeteroGraph` *in
place* (the dict entries are replaced with fresh objects, never edited
buffer-wise) and, when handed the :class:`~repro.core.context.CondensationContext`
that serves artifacts for that graph, invalidates **exactly** the memos the
delta touches:

* a meta-path adjacency (and its packed/CSC/boolean attribute caches, which
  die with the replaced object) is dropped iff the delta edits an edge on
  one of the path's hops or changes the node count of a type on the path;
* per-type embeddings are dropped only for the touched types;
* schema-level artifacts (hierarchy, enumerated meta-paths) always survive.

Everything else in the context keeps serving cache hits, which is what makes
warm-started re-condensation cheap for small deltas.

Adjacency matrices are treated as **unit-weight** edge sets (the convention
everywhere in this library): applying a delta unions/differences sparsity
patterns, and duplicate insertions are idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro import obs
from repro.core.context import CondensationContext
from repro.core.metapaths import MetaPath
from repro.hetero.graph import HeteroGraph, NodeSplits, combine_typed_adjacency
from repro.hetero.sparse import boolean_csr
from repro.streaming.delta import GraphDelta
from repro.streaming.patch import (
    compose_rows,
    patched_packed,
    propagate_dirty,
    replace_rows,
    shrink_to_changed_rows,
)

__all__ = ["ApplyReport", "DeltaApplier"]

#: dirty-row fraction above which patching a composed adjacency is dropped
#: in favour of re-composing it from scratch
PATCH_ROW_FRACTION = 0.5


@dataclass
class ApplyReport:
    """What one :meth:`DeltaApplier.apply` call actually changed."""

    step: int
    edges_added: int = 0
    edges_removed: int = 0
    nodes_added: int = 0
    nodes_removed: int = 0
    #: touched edges / pre-delta edge count (drives the recondense fallback)
    edge_fraction: float = 0.0
    touched_relations: set[str] = field(default_factory=set)
    touched_type_pairs: set[tuple[str, str]] = field(default_factory=set)
    touched_node_types: set[str] = field(default_factory=set)
    #: meta-path keys dropped from the shared context (empty without one)
    invalidated_paths: list[tuple[str, ...]] = field(default_factory=list)
    #: meta-path keys whose composed adjacency was row-patched in place
    patched_paths: list[tuple[str, ...]] = field(default_factory=list)
    #: target-type node ids whose propagated features may have changed, or
    #: ``None`` when unknown (no shared context was refreshed).  This is the
    #: **dirty set** the serving layer's prediction-cache invalidation is
    #: driven by: conservative (a superset of the truly changed rows, via
    #: ``max_hops``-bounded reachability from every touched node on both the
    #: pre- and post-delta graph) but sound — a target id absent from the
    #: set is guaranteed to have byte-identical propagated features.
    dirty_targets: np.ndarray | None = None


def _pair_matrix(
    src: np.ndarray, dst: np.ndarray, shape: tuple[int, int]
) -> sp.csr_matrix:
    """Unit-weight CSR with one stored entry per distinct (src, dst) pair."""
    matrix = sp.coo_matrix(
        (np.ones(src.size, dtype=np.float64), (src, dst)), shape=shape
    ).tocsr()
    matrix.sum_duplicates()
    if matrix.nnz:
        matrix.data = np.ones_like(matrix.data)
    return matrix


def _with_shape(matrix: sp.csr_matrix, shape: tuple[int, int]) -> sp.csr_matrix:
    """A new CSR object over ``matrix``'s entries with a (grown) shape."""
    extra_rows = shape[0] - matrix.shape[0]
    indptr = matrix.indptr
    if extra_rows > 0:
        indptr = np.concatenate(
            [indptr, np.full(extra_rows, indptr[-1], dtype=indptr.dtype)]
        )
    return sp.csr_matrix((matrix.data, matrix.indices, indptr), shape=shape)


class DeltaApplier:
    """Applies deltas to a graph, keeping a shared context precisely warm."""

    def apply(
        self,
        graph: HeteroGraph,
        delta: GraphDelta,
        *,
        context: CondensationContext | None = None,
        edge_fraction: float | None = None,
    ) -> ApplyReport:
        """Apply ``delta`` to ``graph`` in place and invalidate stale memos.

        Order of operations: node insertions (edge endpoints may reference
        the new ids), edge insertions, edge removals, node removals
        (tombstoning also removes every incident edge).  The mutated graph
        is re-validated before the method returns.  ``edge_fraction`` lets a
        caller that already computed ``delta.edge_fraction(graph)`` (the
        incremental condenser's threshold check) avoid paying for it twice.
        """
        with obs.span("stream.apply_delta", step=int(delta.step)):
            return self._apply(graph, delta, context=context, edge_fraction=edge_fraction)

    def _apply(
        self,
        graph: HeteroGraph,
        delta: GraphDelta,
        *,
        context: CondensationContext | None,
        edge_fraction: float | None,
    ) -> ApplyReport:
        delta.validate_against(graph)
        report = ApplyReport(
            step=delta.step,
            edge_fraction=(
                delta.edge_fraction(graph) if edge_fraction is None else edge_fraction
            ),
            touched_relations=delta.touched_relations(),
            touched_type_pairs=delta.touched_type_pairs(graph),
            touched_node_types=delta.touched_node_types(),
        )
        keep_warm = context is not None and context.matches(graph)
        old_adjacency = dict(graph.adjacency) if keep_warm else None
        old_num_nodes = dict(graph.num_nodes) if keep_warm else None
        changed = self._changed_node_sets(graph, delta) if keep_warm else None

        self._add_nodes(graph, delta, report)
        self._edit_edges(graph, delta, report)
        self._remove_nodes(graph, delta, report)
        graph.validate()

        if keep_warm:
            self._refresh_context(
                graph, delta, context, report, old_adjacency, old_num_nodes, changed
            )
            report.dirty_targets = self._dirty_targets(
                graph, delta, context.max_hops, old_adjacency, old_num_nodes, changed
            )
        return report

    # ------------------------------------------------------------------ #
    # Dirty-set computation (serving-cache invalidation)
    # ------------------------------------------------------------------ #
    def _dirty_targets(
        self,
        graph: HeteroGraph,
        delta: GraphDelta,
        max_hops: int,
        old_adjacency: dict[str, sp.csr_matrix],
        old_num_nodes: dict[str, int],
        changed: dict[frozenset, dict[str, np.ndarray]],
    ) -> np.ndarray:
        """Target ids whose propagated features may differ after ``delta``.

        Propagated features are products of *row-normalised* hop matrices,
        so a target's row can change in **value** even when its boolean
        receptive pattern survives (an intermediate node's degree shifted).
        The sound over-approximation is reachability: a target's features
        can only change if it reaches a touched node within ``max_hops``
        hops on the pre-delta graph (removed contributions) or on the
        post-delta graph (added contributions).  Both sides are walked and
        the union returned; the pre-delta side uses the adjacency snapshot
        taken before mutation.
        """
        seeds: dict[str, list[np.ndarray]] = {}

        def seed(node_type: str, ids: np.ndarray) -> None:
            if ids.size:
                seeds.setdefault(node_type, []).append(
                    np.asarray(ids, dtype=np.int64)
                )

        for per_type in changed.values():
            for node_type, ids in per_type.items():
                seed(node_type, ids)
        for node_type, ids in delta.remove_nodes.items():
            seed(node_type, ids)
        for node_type, feats in delta.add_nodes.items():
            count = int(feats.shape[0])
            if count:
                total = graph.num_nodes[node_type]
                seed(node_type, np.arange(total - count, total, dtype=np.int64))
        merged = {
            node_type: np.unique(np.concatenate(parts))
            for node_type, parts in seeds.items()
        }
        if not merged:
            return np.empty(0, dtype=np.int64)

        pre_cache: dict[tuple[str, str], sp.csr_matrix] = {}

        def post_hop(src: str, dst: str) -> sp.csr_matrix:
            return graph.typed_adjacency(src, dst)

        def pre_hop(src: str, dst: str) -> sp.csr_matrix:
            hop = pre_cache.get((src, dst))
            if hop is None:
                hop = combine_typed_adjacency(
                    graph.schema, old_num_nodes, old_adjacency, src, dst
                )
                pre_cache[(src, dst)] = hop
            return hop

        post = self._reach_targets(graph, graph.num_nodes, post_hop, merged, max_hops)
        pre = self._reach_targets(graph, old_num_nodes, pre_hop, merged, max_hops)
        return np.union1d(pre, post)

    @staticmethod
    def _reach_targets(
        graph: HeteroGraph,
        num_nodes: dict[str, int],
        hop_matrix,
        seeds: dict[str, np.ndarray],
        max_hops: int,
    ) -> np.ndarray:
        """Target ids within ``max_hops`` typed hops of any seeded node."""
        schema = graph.schema
        pairs = {
            (rel.src, rel.dst) for rel in schema.relations
        } | {(rel.dst, rel.src) for rel in schema.relations}
        marks = {
            node_type: np.zeros(num_nodes[node_type], dtype=bool)
            for node_type in schema.node_types
        }
        for node_type, ids in seeds.items():
            valid = ids[(ids >= 0) & (ids < num_nodes[node_type])]
            marks[node_type][valid] = True
        for _ in range(int(max_hops)):
            reached = {t: m.copy() for t, m in marks.items()}
            for src, dst in pairs:
                if not marks[dst].any():
                    continue
                hop = hop_matrix(src, dst)
                reached[src] |= (hop @ marks[dst].astype(np.float64)) > 0
            marks = reached
        return np.nonzero(marks[schema.target_type])[0].astype(np.int64)

    # ------------------------------------------------------------------ #
    # Context refresh: patch what can be patched, drop the rest
    # ------------------------------------------------------------------ #
    @staticmethod
    def _changed_node_sets(
        graph: HeteroGraph, delta: GraphDelta
    ) -> dict[frozenset, dict[str, np.ndarray]]:
        """Changed node ids per touched type pair, per side type.

        Collected on the **pre-mutation** graph: edge-delta endpoints plus,
        for tombstoned nodes, the node itself and its old neighbours on the
        other side (their rows/columns in the combined adjacency change
        too).  These sets seed the dirty-row propagation of
        :func:`~repro.streaming.patch.propagate_dirty`.
        """
        collected: dict[frozenset, dict[str, list[np.ndarray]]] = {}

        def note(pair: frozenset, node_type: str, ids: np.ndarray) -> None:
            if ids.size:
                collected.setdefault(pair, {}).setdefault(node_type, []).append(
                    np.asarray(ids, dtype=np.int64)
                )

        for edits in (delta.add_edges, delta.remove_edges):
            for name, (src, dst) in edits.items():
                rel = graph.schema.relation(name)
                pair = frozenset((rel.src, rel.dst))
                note(pair, rel.src, src)
                note(pair, rel.dst, dst)
        for node_type, ids in delta.remove_nodes.items():
            if ids.size == 0:
                continue
            # Ids added by this same delta do not exist in the pre-mutation
            # matrices (and contribute no old neighbours).
            existing = ids[ids < graph.num_nodes[node_type]]
            for name, matrix in graph.adjacency.items():
                rel = graph.schema.relation(name)
                if node_type not in (rel.src, rel.dst):
                    continue
                pair = frozenset((rel.src, rel.dst))
                note(pair, node_type, ids)
                if rel.src == node_type and existing.size:
                    csr = matrix.tocsr()
                    starts, stops = csr.indptr[existing], csr.indptr[existing + 1]
                    note(pair, rel.dst, np.concatenate(
                        [csr.indices[a:b] for a, b in zip(starts, stops)]
                        or [np.empty(0, dtype=np.int64)]
                    ))
                if rel.dst == node_type and existing.size:
                    csc = matrix.tocsc()
                    starts, stops = csc.indptr[existing], csc.indptr[existing + 1]
                    note(pair, rel.src, np.concatenate(
                        [csc.indices[a:b] for a, b in zip(starts, stops)]
                        or [np.empty(0, dtype=np.int64)]
                    ))
        return {
            pair: {
                node_type: np.unique(np.concatenate(parts))
                for node_type, parts in per_type.items()
            }
            for pair, per_type in collected.items()
        }

    def _refresh_context(
        self,
        graph: HeteroGraph,
        delta: GraphDelta,
        context: CondensationContext,
        report: ApplyReport,
        old_adjacency: dict[str, sp.csr_matrix],
        old_num_nodes: dict[str, int],
        changed: dict[frozenset, dict[str, np.ndarray]],
    ) -> None:
        # Paths visiting a type whose id space grew cannot be row-patched
        # (every shape changes) — drop them outright.
        added_types = {t for t, feats in delta.add_nodes.items() if feats.shape[0]}
        if added_types:
            report.invalidated_paths.extend(context.invalidate_nodes(added_types))

        new_typed: dict[tuple[str, str], sp.csr_matrix] = {}
        old_typed: dict[tuple[str, str], sp.csr_matrix] = {}

        def typed_new(src: str, dst: str) -> sp.csr_matrix:
            hop = new_typed.get((src, dst))
            if hop is None:
                hop = boolean_csr(graph.typed_adjacency(src, dst))
                new_typed[(src, dst)] = hop
            return hop

        def typed_old(src: str, dst: str) -> sp.csr_matrix:
            hop = old_typed.get((src, dst))
            if hop is None:
                hop = combine_typed_adjacency(
                    graph.schema, old_num_nodes, old_adjacency, src, dst
                )
                old_typed[(src, dst)] = hop
            return hop

        for key in context.cached_path_keys(normalize=False):
            metapath = MetaPath(key)
            for hop in metapath.hops():
                typed_new(*hop)
                if frozenset(hop) in changed:
                    typed_old(*hop)
            dirty = propagate_dirty(metapath, changed, old_typed, new_typed)
            if dirty is None or dirty.size == 0:
                continue  # pattern provably unchanged: keep serving the memo
            old_matrix = context.cached_adjacency(key)
            if (
                old_matrix is None
                or dirty.size > PATCH_ROW_FRACTION * max(old_matrix.shape[0], 1)
            ):
                report.invalidated_paths.extend(context.invalidate_paths([key]))
                continue
            block = compose_rows(graph, metapath, dirty, hop_cache=new_typed)
            dirty, block = shrink_to_changed_rows(old_matrix, dirty, block)
            if dirty.size == 0:
                # Over-approximated dirtiness: every recomposed row came out
                # pattern-identical.  Keep the old *object* so every
                # identity-keyed memo downstream keeps hitting.
                continue
            new_matrix = replace_rows(old_matrix, dirty, block)
            patched_packed(old_matrix, new_matrix, dirty)
            context.install_adjacency(key, new_matrix)
            report.patched_paths.append(key)

        # Normalised forms are not patched: drop the ones a touched hop feeds.
        stale_normalized = [
            key
            for key in context.cached_path_keys(normalize=True)
            if any(frozenset(hop) in changed for hop in MetaPath(key).hops())
        ]
        if stale_normalized:
            report.invalidated_paths.extend(context.invalidate_paths(stale_normalized))
        touched_types = {t for pair in report.touched_type_pairs for t in pair}
        touched_types |= report.touched_node_types
        if touched_types:
            context.invalidate_type_embeddings(touched_types)

    # ------------------------------------------------------------------ #
    def _add_nodes(self, graph: HeteroGraph, delta: GraphDelta, report: ApplyReport) -> None:
        target = graph.schema.target_type
        for node_type, feats in delta.add_nodes.items():
            count = int(feats.shape[0])
            if count == 0:
                continue
            old_count = graph.num_nodes[node_type]
            graph.features[node_type] = np.vstack([graph.features[node_type], feats])
            graph.num_nodes[node_type] = old_count + count
            report.nodes_added += count
            for name, matrix in list(graph.adjacency.items()):
                rel = graph.schema.relation(name)
                if node_type in (rel.src, rel.dst):
                    shape = (graph.num_nodes[rel.src], graph.num_nodes[rel.dst])
                    graph.adjacency[name] = _with_shape(matrix, shape)
            if node_type == target:
                new_ids = np.arange(old_count, old_count + count, dtype=np.int64)
                graph.labels = np.concatenate([graph.labels, delta.add_labels])
                splits = {
                    "train": graph.splits.train,
                    "val": graph.splits.val,
                    "test": graph.splits.test,
                }
                splits[delta.add_split] = np.concatenate(
                    [splits[delta.add_split], new_ids]
                )
                graph.splits = NodeSplits(**splits)

    def _edit_edges(self, graph: HeteroGraph, delta: GraphDelta, report: ApplyReport) -> None:
        for name, (src, dst) in delta.add_edges.items():
            if src.size == 0:
                continue
            matrix = graph.relation_matrix(name)
            union = matrix + _pair_matrix(src, dst, matrix.shape)
            union.data = np.minimum(union.data, 1.0)
            report.edges_added += int(union.nnz - matrix.nnz)
            graph.adjacency[name] = union
        for name, (src, dst) in delta.remove_edges.items():
            if src.size == 0:
                continue
            matrix = graph.relation_matrix(name)
            keep = matrix - matrix.multiply(_pair_matrix(src, dst, matrix.shape))
            keep.eliminate_zeros()
            report.edges_removed += int(matrix.nnz - keep.nnz)
            graph.adjacency[name] = keep.tocsr()

    def _remove_nodes(self, graph: HeteroGraph, delta: GraphDelta, report: ApplyReport) -> None:
        target = graph.schema.target_type
        for node_type, ids in delta.remove_nodes.items():
            if ids.size == 0:
                continue
            report.nodes_removed += int(ids.size)
            for name, matrix in list(graph.adjacency.items()):
                rel = graph.schema.relation(name)
                if node_type not in (rel.src, rel.dst):
                    continue
                coo = matrix.tocoo()
                mask = np.ones(coo.nnz, dtype=bool)
                if rel.src == node_type:
                    mask &= ~np.isin(coo.row, ids)
                if rel.dst == node_type:
                    mask &= ~np.isin(coo.col, ids)
                dropped = int(coo.nnz - mask.sum())
                if dropped == 0:
                    continue
                report.edges_removed += dropped
                graph.adjacency[name] = sp.coo_matrix(
                    (coo.data[mask], (coo.row[mask], coo.col[mask])), shape=matrix.shape
                ).tocsr()
            features = graph.features[node_type].copy()
            features[ids] = 0.0
            graph.features[node_type] = features
            if node_type == target:
                labels = graph.labels.copy()
                labels[ids] = -1
                graph.labels = labels
                graph.splits = NodeSplits(
                    train=graph.splits.train[~np.isin(graph.splits.train, ids)],
                    val=graph.splits.val[~np.isin(graph.splits.val, ids)],
                    test=graph.splits.test[~np.isin(graph.splits.test, ids)],
                )
