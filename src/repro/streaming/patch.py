"""Row-level patching of composed meta-path adjacencies.

A graph delta usually changes the receptive fields of a handful of target
rows, yet re-composing a k-hop meta-path adjacency from scratch costs a full
chain of sparse matrix products plus a canonicalising sort.  This module
recomputes **only the dirty rows** — the rows whose receptive field can have
changed — and splices them into the previously composed matrix:

* :func:`compose_rows` runs the same boolean hop composition as
  :func:`~repro.core.metapaths.metapath_adjacency` restricted to a row
  subset (rows of a product equal the product of the row slice, so the
  patched pattern is *identical* to a full re-composition);
* :func:`replace_rows` performs vectorized CSR row surgery;
* :func:`patched_packed` reuses the previous bit-packed words, re-packing
  only the dirty rows, and pre-attaches the result to the new matrix so the
  coverage kernels never repack from scratch.

Dirty rows are over-approximated by :func:`propagate_dirty`: the changed
node sets of a hop are walked back to the anchor type through the union of
the pre- and post-delta hop adjacencies, so every row that gained or lost a
walk through a changed edge is marked.  Over-approximation is safe (a clean
row recomputes to its identical pattern); under-approximation would break
byte-identity, which the property suite guards.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.coverage_kernels import PackedAdjacency
from repro.core.metapaths import MetaPath
from repro.hetero.graph import HeteroGraph
from repro.hetero.sparse import boolean_csr, validate_attribute_caches

__all__ = [
    "compose_rows",
    "mismatched_row_positions",
    "replace_rows",
    "shrink_to_changed_rows",
    "patched_packed",
    "propagate_dirty",
]


def compose_rows(
    graph: HeteroGraph,
    metapath: MetaPath,
    rows: np.ndarray,
    hop_cache: dict[tuple[str, str], sp.csr_matrix] | None = None,
) -> sp.csr_matrix:
    """Rows ``rows`` of the boolean composed adjacency of ``metapath``.

    Pattern-identical to ``metapath_adjacency(graph, metapath,
    normalize=False)[rows]``: boolean hops, product, canonicalised, all
    stored values 1.0.
    """
    block: sp.csr_matrix | None = None
    for src, dst in metapath.hops():
        hop = None if hop_cache is None else hop_cache.get((src, dst))
        if hop is None:
            hop = boolean_csr(graph.typed_adjacency(src, dst))
            if hop_cache is not None:
                hop_cache[(src, dst)] = hop
        block = hop[rows] if block is None else (block @ hop).tocsr()
    assert block is not None
    if not block.has_canonical_format:
        block.sum_duplicates()
    if block.nnz:
        block.data = np.ones_like(block.data)
    block.has_canonical_format = True
    return block


def mismatched_row_positions(
    a: sp.csr_matrix, rows_a: np.ndarray, b: sp.csr_matrix, rows_b: np.ndarray
) -> np.ndarray:
    """Positions ``p`` where row ``rows_a[p]`` of ``a`` and row ``rows_b[p]``
    of ``b`` have different sparsity patterns.

    The single row-pattern-diff kernel behind both
    :func:`~repro.streaming.warmstart.changed_rows` (whole-matrix diff) and
    :func:`shrink_to_changed_rows` (patch narrowing): first compare row
    lengths, then gather the equal-length segments with the repeat/cumsum
    multi-slice trick and compare element-wise.  Both matrices must have
    canonical (sorted, duplicate-free) indices.
    """
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    len_a = (a.indptr[rows_a + 1] - a.indptr[rows_a]).astype(np.int64)
    len_b = (b.indptr[rows_b + 1] - b.indptr[rows_b]).astype(np.int64)
    mismatch = len_a != len_b
    same = np.flatnonzero(~mismatch)
    lengths = len_a[same]
    total = int(lengths.sum())
    if total:
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        gathered_a = a.indices[
            np.repeat(a.indptr[rows_a[same]].astype(np.int64), lengths) + offsets
        ]
        gathered_b = b.indices[
            np.repeat(b.indptr[rows_b[same]].astype(np.int64), lengths) + offsets
        ]
        unequal = gathered_a != gathered_b
        if unequal.any():
            row_of = np.repeat(np.arange(same.size, dtype=np.int64), lengths)
            mismatch[same[np.unique(row_of[unequal])]] = True
    return np.flatnonzero(mismatch)


def shrink_to_changed_rows(
    old: sp.csr_matrix, rows: np.ndarray, block: sp.csr_matrix
) -> tuple[np.ndarray, sp.csr_matrix]:
    """Drop the rows of ``block`` whose pattern matches ``old``'s rows.

    Dirty-row propagation over-approximates: a removed hop edge often
    leaves a composed receptive field unchanged (other walks still connect
    the same endpoints).  Narrowing the patch to the *truly* changed rows
    keeps the selection memos' own row-diffs small — and when nothing
    actually changed, the caller can keep the old matrix **object**, which
    lets every downstream identity-keyed memo keep hitting.
    """
    changed = mismatched_row_positions(
        old, rows, block, np.arange(np.asarray(rows).size, dtype=np.int64)
    )
    return np.asarray(rows, dtype=np.int64)[changed], block[changed]


def replace_rows(
    old: sp.csr_matrix, rows: np.ndarray, block: sp.csr_matrix
) -> sp.csr_matrix:
    """A new CSR equal to ``old`` with ``rows`` replaced by ``block``'s rows.

    Both inputs must be canonical; the result is canonical (each row is
    copied verbatim from a canonical source).  Runs in O(nnz) with two
    vectorized scatters — no sort.  All-ones data (the boolean adjacencies
    this is used on) skips the value scatters entirely.
    """
    n_rows = old.shape[0]
    rows = np.asarray(rows, dtype=np.int64)
    counts = np.diff(old.indptr).astype(np.int64)
    new_counts = counts.copy()
    new_counts[rows] = np.diff(block.indptr).astype(np.int64)
    indptr = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(new_counts, dtype=np.int64)]
    )
    total = int(indptr[-1])
    indices = np.empty(total, dtype=np.int64)
    all_ones = (old.nnz == 0 or bool((old.data == 1.0).all())) and (
        block.nnz == 0 or bool((block.data == 1.0).all())
    )
    data = None if all_ones else np.empty(total, dtype=old.data.dtype)

    keep_row = np.ones(n_rows, dtype=bool)
    keep_row[rows] = False
    entry_rows = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
    keep_entry = keep_row[entry_rows]
    within = np.arange(old.nnz, dtype=np.int64) - np.repeat(
        old.indptr[:-1].astype(np.int64), counts
    )
    dest = indptr[entry_rows] + within
    indices[dest[keep_entry]] = old.indices[keep_entry]
    if data is not None:
        data[dest[keep_entry]] = old.data[keep_entry]

    block_counts = np.diff(block.indptr).astype(np.int64)
    block_rows = np.repeat(rows, block_counts)
    block_within = np.arange(block.nnz, dtype=np.int64) - np.repeat(
        block.indptr[:-1].astype(np.int64), block_counts
    )
    block_dest = indptr[block_rows] + block_within
    indices[block_dest] = block.indices
    if data is not None:
        data[block_dest] = block.data

    if data is None:
        data = np.ones(total, dtype=np.float64)
    result = sp.csr_matrix((data, indices, indptr), shape=old.shape)
    result.has_canonical_format = True
    return result


def patched_packed(
    old: sp.csr_matrix, new: sp.csr_matrix, rows: np.ndarray
) -> PackedAdjacency | None:
    """Patch ``old``'s cached packed words for ``new`` and attach them.

    Returns the patched :class:`PackedAdjacency` (also pre-attached to
    ``new`` under the fingerprint-guarded cache attribute) or ``None`` when
    ``old`` carries no packed words or the shapes are incompatible.
    """
    old_packed = getattr(old, "_repro_packed", None)
    if old_packed is None or old.shape != new.shape:
        return None
    words = old_packed.words.copy()
    if rows.size:
        words[rows] = PackedAdjacency.from_csr(new[rows]).words
    packed = PackedAdjacency(words, new.shape, source=new)
    validate_attribute_caches(new)  # stamp the fresh object's fingerprint
    try:
        new._repro_packed = packed
    except AttributeError:  # pragma: no cover - csr accepts attrs
        pass
    return packed


def _rows_reaching(matrix: sp.csr_matrix, columns: np.ndarray) -> np.ndarray:
    """Row ids of ``matrix`` with at least one stored entry in ``columns``."""
    if columns.size == 0:
        return np.empty(0, dtype=np.int64)
    indicator = np.zeros(matrix.shape[1], dtype=np.float64)
    indicator[columns] = 1.0
    return np.flatnonzero(np.asarray(matrix @ indicator).ravel() > 0)


def propagate_dirty(
    metapath: MetaPath,
    changed: dict[frozenset, dict[str, np.ndarray]],
    typed_old: "dict[tuple[str, str], sp.csr_matrix]",
    typed_new: "dict[tuple[str, str], sp.csr_matrix]",
) -> np.ndarray | None:
    """Anchor-type rows whose composed receptive field may have changed.

    ``changed`` maps an (unordered) touched type pair to the changed node
    ids per side type; ``typed_old`` / ``typed_new`` provide the pre- and
    post-delta typed adjacency of every hop the propagation needs (keyed by
    the ordered hop ``(src, dst)``).  Returns ``None`` when no hop of the
    path is touched (the cached adjacency is exactly valid), otherwise the
    sorted dirty row ids (possibly empty).

    A node of the hop's *source* side seeds dirtiness at that level; the
    seed sets are walked back to level 0 through the union of old and new
    hop patterns, so rows that lost *or* gained a walk are both caught.
    """
    hops = metapath.hops()
    touched_levels = [
        level for level, hop in enumerate(hops) if frozenset(hop) in changed
    ]
    if not touched_levels:
        return None
    dirty_parts: list[np.ndarray] = []
    for level in touched_levels:
        src, _dst = hops[level]
        seeds = changed[frozenset(hops[level])].get(src)
        if seeds is None or seeds.size == 0:
            continue
        current = np.asarray(seeds, dtype=np.int64)
        # Walk back through hops level-1 .. 0.
        for back in range(level - 1, -1, -1):
            hop = hops[back]
            reach = _rows_reaching(typed_new[hop], current)
            if frozenset(hop) in changed:
                reach = np.union1d(reach, _rows_reaching(typed_old[hop], current))
            current = reach
            if current.size == 0:
                break
        if current.size:
            dirty_parts.append(current)
    if not dirty_parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(dirty_parts))
