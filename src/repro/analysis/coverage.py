"""Receptive-field coverage analysis behind Fig. 9 (method interpretability).

Given a set of selected target nodes, computes which nodes of the graph they
"capture" within ``k`` hops along meta-paths, and summary statistics that
explain *why* FreeHGC's criterion works: more nodes activated (the R(S) term)
and activated nodes spread across the embedding space (the 1 − J(S) term).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.embedding import pca
from repro.core.metapaths import enumerate_metapaths, metapath_adjacency
from repro.hetero.graph import HeteroGraph

__all__ = ["CoverageReport", "captured_nodes", "coverage_report"]


@dataclass(frozen=True)
class CoverageReport:
    """Summary of what a selected target set captures."""

    method: str
    num_selected: int
    captured_per_type: dict[str, int]
    total_captured: int
    coverage_fraction: float
    dispersion: float

    def as_row(self) -> dict[str, object]:
        """Flatten into a report row."""
        return {
            "method": self.method,
            "selected": self.num_selected,
            "captured": self.total_captured,
            "coverage_%": round(100.0 * self.coverage_fraction, 2),
            "dispersion": round(self.dispersion, 3),
        }


def captured_nodes(
    graph: HeteroGraph,
    selected: np.ndarray,
    *,
    max_hops: int = 3,
    max_paths: int = 16,
) -> dict[str, np.ndarray]:
    """Nodes of every type reachable from ``selected`` within ``max_hops``.

    The target type itself is included (a selected node captures itself and
    any target node reachable through e.g. a PAP path).
    """
    selected = np.asarray(selected, dtype=np.int64)
    target = graph.schema.target_type
    captured: dict[str, set[int]] = {t: set() for t in graph.schema.node_types}
    captured[target].update(int(v) for v in selected)
    for metapath in enumerate_metapaths(graph.schema, target, max_hops, max_paths=max_paths):
        adjacency = metapath_adjacency(graph, metapath, normalize=False)
        if selected.size == 0:
            continue
        reached = np.unique(adjacency[selected].nonzero()[1])
        captured[metapath.end].update(int(v) for v in reached)
    return {t: np.array(sorted(nodes), dtype=np.int64) for t, nodes in captured.items()}


def coverage_report(
    graph: HeteroGraph,
    selected: np.ndarray,
    *,
    method: str = "selection",
    max_hops: int = 3,
    max_paths: int = 16,
) -> CoverageReport:
    """Compute the Fig. 9 statistics for one selection."""
    captured = captured_nodes(graph, selected, max_hops=max_hops, max_paths=max_paths)
    per_type = {t: int(nodes.size) for t, nodes in captured.items()}
    total = int(sum(per_type.values()))
    fraction = total / max(graph.total_nodes, 1)

    # Dispersion: mean pairwise distance of the captured target nodes in the
    # 2-D PCA embedding of target features — the quantity the 1 − J(S) term
    # is meant to increase (captured nodes scattered across the dataset).
    target = graph.schema.target_type
    target_captured = captured[target]
    if target_captured.size >= 2:
        embedded = pca(graph.features[target], 2)[target_captured]
        diffs = embedded[:, None, :] - embedded[None, :, :]
        dispersion = float(np.sqrt((diffs**2).sum(axis=-1)).mean())
    else:
        dispersion = 0.0
    return CoverageReport(
        method=method,
        num_selected=int(np.asarray(selected).size),
        captured_per_type=per_type,
        total_captured=total,
        coverage_fraction=fraction,
        dispersion=dispersion,
    )
