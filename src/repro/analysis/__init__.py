"""Analysis utilities: embeddings and coverage statistics (Fig. 9)."""

from repro.analysis.coverage import CoverageReport, captured_nodes, coverage_report
from repro.analysis.embedding import pca, tsne

__all__ = ["pca", "tsne", "CoverageReport", "captured_nodes", "coverage_report"]
