"""Low-dimensional embeddings for the interpretability analysis (Fig. 9).

The paper visualises selected vs. captured vs. un-captured nodes with t-SNE.
This module provides a NumPy PCA and a small exact t-SNE implementation
(gradient descent on the KL divergence between Gaussian input affinities and
Student-t output affinities) sufficient for the few hundred points the
figure uses.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["pca", "tsne"]


def pca(points: np.ndarray, dim: int = 2) -> np.ndarray:
    """Project ``points`` onto their top ``dim`` principal components."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("pca expects a 2-D array")
    dim = min(dim, points.shape[1])
    centered = points - points.mean(axis=0, keepdims=True)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:dim].T


def _pairwise_squared_distances(points: np.ndarray) -> np.ndarray:
    sq = (points**2).sum(axis=1)
    distances = sq[:, None] + sq[None, :] - 2.0 * points @ points.T
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _conditional_probabilities(distances: np.ndarray, perplexity: float) -> np.ndarray:
    """Binary-search per-point bandwidths to hit the requested perplexity."""
    count = distances.shape[0]
    probabilities = np.zeros((count, count), dtype=np.float64)
    target_entropy = np.log(perplexity)
    for i in range(count):
        beta_low, beta_high = 1e-20, 1e20
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(50):
            exp_row = np.exp(-row * beta)
            total = exp_row.sum()
            if total <= 0:
                beta /= 2.0
                continue
            p = exp_row / total
            entropy = -(p[p > 0] * np.log(p[p > 0])).sum()
            if abs(entropy - target_entropy) < 1e-4:
                break
            if entropy > target_entropy:
                beta_low = beta
                beta = beta * 2 if beta_high >= 1e20 else (beta + beta_high) / 2
            else:
                beta_high = beta
                beta = beta / 2 if beta_low <= 1e-20 else (beta + beta_low) / 2
        exp_row = np.exp(-row * beta)
        total = exp_row.sum()
        probabilities[i] = exp_row / total if total > 0 else 0.0
        probabilities[i, i] = 0.0
    return probabilities


def tsne(
    points: np.ndarray,
    dim: int = 2,
    *,
    perplexity: float = 20.0,
    iterations: int = 300,
    learning_rate: float = 100.0,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Exact t-SNE embedding of ``points`` into ``dim`` dimensions.

    Designed for the small point counts of the interpretability figure
    (hundreds of nodes); initialised from PCA for stability.
    """
    points = np.asarray(points, dtype=np.float64)
    count = points.shape[0]
    if count < 3:
        return pca(points, dim)
    rng = ensure_rng(seed)
    perplexity = min(perplexity, max(2.0, (count - 1) / 3.0))

    distances = _pairwise_squared_distances(points)
    conditional = _conditional_probabilities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * count)
    joint = np.maximum(joint, 1e-12)

    embedding = pca(points, dim)
    if embedding.shape[1] < dim:
        padding = rng.standard_normal((count, dim - embedding.shape[1])) * 1e-4
        embedding = np.concatenate([embedding, padding], axis=1)
    embedding = embedding / (embedding.std() + 1e-12) * 1e-2
    velocity = np.zeros_like(embedding)

    for iteration in range(iterations):
        emb_distances = _pairwise_squared_distances(embedding)
        inv = 1.0 / (1.0 + emb_distances)
        np.fill_diagonal(inv, 0.0)
        q = inv / max(inv.sum(), 1e-12)
        q = np.maximum(q, 1e-12)
        # Early exaggeration for the first quarter of the optimisation.
        p_eff = joint * 4.0 if iteration < iterations // 4 else joint
        pq = (p_eff - q) * inv
        gradient = 4.0 * (np.diag(pq.sum(axis=1)) - pq) @ embedding
        momentum = 0.5 if iteration < iterations // 4 else 0.8
        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0, keepdims=True)
    return embedding
