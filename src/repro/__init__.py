"""FreeHGC reproduction: training-free heterogeneous graph condensation.

A pure-Python (NumPy/SciPy) reproduction of *"Training-free Heterogeneous
Graph Condensation via Data Selection"* (ICDE 2025), including the FreeHGC
algorithm, every baseline it is compared against, the heterogeneous-graph
and neural-network substrates it needs, and an evaluation pipeline that
regenerates the paper's tables and figures.

Typical usage — the one-call facade::

    import repro

    condensed = repro.condense("acm", ratio=0.024, max_hops=3)

or the explicit pipeline::

    from repro.datasets import load_acm
    from repro.core import FreeHGC
    from repro.models import SeHGNN

    graph = load_acm(scale=0.5, seed=0)
    condensed = FreeHGC(max_hops=3).condense(graph, ratio=0.024, seed=0)
    model = SeHGNN(hidden_dim=64)
    model.fit(condensed)
    print("accuracy on the full graph:", model.evaluate(graph))

Every pluggable component (condensers, stage strategies, models, datasets)
is resolvable by name through :mod:`repro.registry`, and the paper's tables
are reproduced with the parallel, resumable experiment runner::

    python -m repro sweep --dataset acm --ratios 0.01,0.05 --workers 4

(see :mod:`repro.runner` and ``docs/reproduce.md``).

Examples
--------
>>> import repro
>>> isinstance(repro.__version__, str)
True
>>> "freehgc" in repro.registry.condensers
True
"""

from repro import registry
from repro.api import condense
from repro.core import CondensationContext, FreeHGC
from repro.errors import (
    BudgetError,
    CondensationError,
    ConfigurationError,
    DatasetError,
    GraphConstructionError,
    ModelError,
    RegistryError,
    ReproError,
    SchemaError,
)
from repro.hetero import HeteroGraph, HeteroGraphBuilder, HeteroSchema, Relation

__version__ = "1.2.0"

__all__ = [
    "condense",
    "registry",
    "FreeHGC",
    "CondensationContext",
    "HeteroGraph",
    "HeteroGraphBuilder",
    "HeteroSchema",
    "Relation",
    "ReproError",
    "SchemaError",
    "GraphConstructionError",
    "BudgetError",
    "CondensationError",
    "ConfigurationError",
    "DatasetError",
    "ModelError",
    "RegistryError",
    "__version__",
]
