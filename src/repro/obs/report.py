"""Trace analysis: span-tree assembly, per-name statistics, flame export.

Consumed by ``python -m repro trace report``/``flame`` and the tests.  All
aggregation is deterministic: ties break on span name, quantiles use the
nearest-rank method, and tree children render in first-seen order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.spans import Span

__all__ = [
    "REPORT_SCHEMA",
    "NameStats",
    "TreeNode",
    "aggregate",
    "build_tree",
    "collapsed_stacks",
    "render_report",
    "report_obj",
]

#: schema tag for ``repro trace report --json`` output
REPORT_SCHEMA = "repro.trace.report.v1"


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(q * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass
class NameStats:
    """Aggregate statistics for one span name across the trace."""

    name: str
    count: int = 0
    errors: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    durations: list[float] = field(default_factory=list)

    @property
    def p50_s(self) -> float:
        return _quantile(sorted(self.durations), 0.50)

    @property
    def p95_s(self) -> float:
        return _quantile(sorted(self.durations), 0.95)

    def to_obj(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "errors": self.errors,
            "total_s": round(self.total_s, 9),
            "self_s": round(self.self_s, 9),
            "p50_s": round(self.p50_s, 9),
            "p95_s": round(self.p95_s, 9),
        }


@dataclass
class TreeNode:
    """One name-path node of the merged call tree (children merged by name)."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    children: dict[str, "TreeNode"] = field(default_factory=dict)

    def child(self, name: str) -> "TreeNode":
        node = self.children.get(name)
        if node is None:
            node = TreeNode(name)
            self.children[name] = node
        return node

    def to_obj(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": round(self.total_s, 9),
            "self_s": round(self.self_s, 9),
            "children": [child.to_obj() for child in self.children.values()],
        }


def _self_times(spans: list[Span]) -> dict[str, float]:
    """span_id -> duration minus the sum of direct children's durations."""
    child_sum: dict[str, float] = {}
    for span in spans:
        if span.parent_id is not None:
            child_sum[span.parent_id] = child_sum.get(span.parent_id, 0.0) + span.duration_s
    return {
        span.span_id: max(0.0, span.duration_s - child_sum.get(span.span_id, 0.0))
        for span in spans
    }


def aggregate(spans: list[Span]) -> list[NameStats]:
    """Per-name statistics, sorted by descending self time then name."""
    self_s = _self_times(spans)
    stats: dict[str, NameStats] = {}
    for span in spans:
        entry = stats.setdefault(span.name, NameStats(span.name))
        entry.count += 1
        entry.total_s += span.duration_s
        entry.self_s += self_s[span.span_id]
        entry.durations.append(span.duration_s)
        if span.status != "ok":
            entry.errors += 1
    return sorted(stats.values(), key=lambda s: (-s.self_s, s.name))


def build_tree(spans: list[Span]) -> TreeNode:
    """The merged name-path call tree under a synthetic root.

    Spans whose parent is absent from the trace (cross-process orphans,
    dropped ring-buffer entries) attach to the root.
    """
    by_id = {span.span_id: span for span in spans}
    self_s = _self_times(spans)

    def path(span: Span) -> list[str]:
        names: list[str] = []
        seen: set[str] = set()
        cursor: Span | None = span
        while cursor is not None and cursor.span_id not in seen:
            seen.add(cursor.span_id)
            names.append(cursor.name)
            cursor = by_id.get(cursor.parent_id) if cursor.parent_id else None
        return list(reversed(names))

    root = TreeNode("<root>")
    for span in spans:
        node = root
        for name in path(span):
            node = node.child(name)
        node.count += 1
        node.total_s += span.duration_s
        node.self_s += self_s[span.span_id]
    return root


def collapsed_stacks(spans: list[Span]) -> list[str]:
    """Flame-graph collapsed-stack lines: ``a;b;c <self_time_us>``.

    Lines are merged by stack and sorted lexically, so the output is
    stable across span orderings; values are integer microseconds of
    *self* time (the collapsed-stack convention).
    """

    def walk(node: TreeNode, prefix: list[str], out: dict[str, int]) -> None:
        stack = prefix + [node.name]
        weight = int(round(node.self_s * 1e6))
        if weight > 0 and node.count:
            key = ";".join(stack)
            out[key] = out.get(key, 0) + weight
        for child in node.children.values():
            walk(child, stack, out)

    root = build_tree(spans)
    merged: dict[str, int] = {}
    for child in root.children.values():
        walk(child, [], merged)
    return [f"{stack} {value}" for stack, value in sorted(merged.items())]


def report_obj(header: dict, spans: list[Span]) -> dict:
    """The ``--json`` payload (schema v1)."""
    return {
        "schema": REPORT_SCHEMA,
        "trace_id": header.get("trace_id", ""),
        "spans": len(spans),
        "scopes": sorted({span.scope for span in spans}),
        "names": [stats.to_obj() for stats in aggregate(spans)],
        "tree": build_tree(spans).to_obj(),
    }


def render_report(header: dict, spans: list[Span]) -> str:
    """Human-readable report: self-time call tree + per-name quantiles."""
    lines = [
        f"trace {header.get('trace_id', '?')} — {len(spans)} spans, "
        f"{len({s.scope for s in spans})} scope(s)",
        "",
        "call tree (count, total, self):",
    ]

    def walk(node: TreeNode, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{node.name:<40s} x{node.count:<6d} "
            f"total {node.total_s * 1e3:9.3f}ms  self {node.self_s * 1e3:9.3f}ms"
        )
        for child in node.children.values():
            walk(child, depth + 1)

    for child in build_tree(spans).children.values():
        walk(child, 1)
    lines += ["", "per span name (self-time ordered):"]
    lines.append(
        f"  {'name':<40s} {'count':>6s} {'total ms':>10s} {'self ms':>10s} "
        f"{'p50 ms':>9s} {'p95 ms':>9s} {'err':>4s}"
    )
    for stats in aggregate(spans):
        lines.append(
            f"  {stats.name:<40s} {stats.count:>6d} {stats.total_s * 1e3:>10.3f} "
            f"{stats.self_s * 1e3:>10.3f} {stats.p50_s * 1e3:>9.3f} "
            f"{stats.p95_s * 1e3:>9.3f} {stats.errors:>4d}"
        )
    return "\n".join(lines)
