"""Span and event dataclasses plus the JSONL trace codec (schema v1).

A *trace* is a forest of spans: each span names one timed operation, holds
the id of its parent (``None`` for roots), and carries free-form string/
number attributes plus zero-duration :class:`SpanEvent` markers.  Spans are
identified by ``"{scope}:{counter}"`` strings — the scope names the process
role (``main``, ``worker-2``, ``cell-17``) and the counter is a seeded
per-tracer sequence, so ids are deterministic and never derived from wall
clock or RNG state.

On disk a trace is JSON Lines: one ``kind: "header"`` record stamping the
schema version and trace id, followed by one ``kind: "span"`` record per
finished span.  :func:`read_trace` is the single decode path shared by the
CLI (``repro trace report``/``flame``) and the tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SERVING_SPAN_SITES",
    "Span",
    "SpanEvent",
    "TraceDecodeError",
    "read_trace",
    "read_trace_tree",
]

#: JSONL trace schema version — bump when the record shape changes.
TRACE_SCHEMA_VERSION = 1

#: Serving-path span names with pre-allocated histogram columns on the
#: shared metrics board (``repro_span_seconds{span=...}``).  Other span
#: names still land in the JSONL trace; only these get Prometheus
#: histograms, because the memmapped board's column set is fixed at create
#: time.
SERVING_SPAN_SITES = (
    "serve.predict",
    "serve.batch_predict",
    "serve.delta",
    "swap.apply",
    "swap.canary",
    "swap.build_session",
    "commit.delta",
    "commit.wal_append",
    "commit.publish",
    "commit.fan_out",
)


class TraceDecodeError(ReproError):
    """A trace file is malformed or has an unsupported schema version."""


@dataclass
class SpanEvent:
    """A named, zero-duration marker inside a span (e.g. a memo hit)."""

    name: str
    #: seconds since the owning span started (monotonic clock)
    offset_s: float = 0.0
    attrs: dict = field(default_factory=dict)

    def to_obj(self) -> dict:
        obj: dict = {"name": self.name, "offset_s": round(self.offset_s, 9)}
        if self.attrs:
            obj["attrs"] = dict(self.attrs)
        return obj

    @classmethod
    def from_obj(cls, obj: dict) -> "SpanEvent":
        return cls(
            name=str(obj["name"]),
            offset_s=float(obj.get("offset_s", 0.0)),
            attrs=dict(obj.get("attrs", {})),
        )


@dataclass
class Span:
    """One finished, timed operation in a trace tree."""

    span_id: str
    name: str
    trace_id: str
    parent_id: str | None = None
    #: seconds since the tracer's epoch (monotonic clock, per process)
    start_s: float = 0.0
    duration_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    #: process role that produced the span (``main``, ``worker-N``, ...)
    scope: str = "main"
    status: str = "ok"

    def to_obj(self) -> dict:
        """JSON-safe record for the JSONL codec."""
        obj: dict = {
            "kind": "span",
            "span_id": self.span_id,
            "name": self.name,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "scope": self.scope,
            "status": self.status,
        }
        if self.attrs:
            obj["attrs"] = dict(self.attrs)
        if self.events:
            obj["events"] = [event.to_obj() for event in self.events]
        return obj

    @classmethod
    def from_obj(cls, obj: dict) -> "Span":
        return cls(
            span_id=str(obj["span_id"]),
            name=str(obj["name"]),
            trace_id=str(obj["trace_id"]),
            parent_id=obj.get("parent_id"),
            start_s=float(obj.get("start_s", 0.0)),
            duration_s=float(obj.get("duration_s", 0.0)),
            attrs=dict(obj.get("attrs", {})),
            events=[SpanEvent.from_obj(e) for e in obj.get("events", ())],
            scope=str(obj.get("scope", "main")),
            status=str(obj.get("status", "ok")),
        )

    def encode_line(self) -> str:
        return json.dumps(self.to_obj(), sort_keys=True, separators=(",", ":"))


def header_record(trace_id: str, *, scope: str = "main") -> dict:
    """The first record of every trace file."""
    return {
        "kind": "header",
        "schema": TRACE_SCHEMA_VERSION,
        "trace_id": trace_id,
        "scope": scope,
    }


def read_trace(path: str | Path) -> tuple[dict, list[Span]]:
    """Decode one JSONL trace file into ``(header, spans)``.

    Raises :class:`TraceDecodeError` on a missing/invalid header, an
    unsupported schema version, or an unparseable record.
    """
    path = Path(path)
    header: dict | None = None
    spans: list[Span] = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TraceDecodeError(f"cannot read trace file {path}: {exc}") from exc
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceDecodeError(
                f"{path}:{number}: unparseable trace record: {exc}"
            ) from exc
        kind = obj.get("kind")
        if kind == "header":
            if int(obj.get("schema", -1)) != TRACE_SCHEMA_VERSION:
                raise TraceDecodeError(
                    f"{path}:{number}: unsupported trace schema "
                    f"{obj.get('schema')!r} (expected {TRACE_SCHEMA_VERSION})"
                )
            if header is None:
                header = obj
        elif kind == "span":
            try:
                spans.append(Span.from_obj(obj))
            except (KeyError, TypeError, ValueError) as exc:
                raise TraceDecodeError(
                    f"{path}:{number}: malformed span record: {exc}"
                ) from exc
        else:
            raise TraceDecodeError(f"{path}:{number}: unknown record kind {kind!r}")
    if header is None:
        raise TraceDecodeError(f"{path}: missing trace header record")
    return header, spans


def read_trace_tree(paths: list[str | Path]) -> tuple[dict, list[Span]]:
    """Merge one or more trace files (main + per-worker sidecars).

    The first file's header wins; all spans are concatenated.  Used by the
    CLI so ``repro trace report run.jsonl`` also picks up
    ``run.jsonl.worker-*`` sidecars when present.
    """
    if not paths:
        raise TraceDecodeError("no trace files to read")
    header, spans = read_trace(paths[0])
    for extra in paths[1:]:
        _, more = read_trace(extra)
        spans.extend(more)
    return header, spans
