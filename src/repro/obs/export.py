"""Trace collection and durable JSONL export.

:class:`SpanCollector` is a bounded ring buffer: finished spans land here
first, so tracing a long-running server cannot grow memory without bound
(the oldest spans are dropped and counted).  :class:`TraceSink` drains the
collector into an append-only JSON Lines file following the repo's
durability idiom — contents are flushed and ``fsync``-ed before every
rotation, and the rotated file is renamed with ``os.replace`` plus a
parent-directory fsync, exactly like a serving publish
(:mod:`repro.serving.integrity`).

Writes are *batched*: spans accumulate in the ring buffer and hit the file
only when ``flush_every`` spans are pending (or on an explicit
:meth:`TraceSink.flush`/:meth:`TraceSink.close`), keeping the per-span cost
of tracing an async serving path to a deque append.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from pathlib import Path

from repro.obs.spans import Span, header_record

__all__ = ["SpanCollector", "TraceSink"]

import json

#: default ring-buffer capacity (spans)
DEFAULT_CAPACITY = 65536
#: default pending-span threshold that triggers a sink write
DEFAULT_FLUSH_EVERY = 256
#: default rotation threshold (bytes); 0 disables rotation
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


class SpanCollector:
    """Thread-safe bounded buffer of finished spans.

    ``capacity`` bounds memory; once full, the oldest span is evicted and
    ``dropped`` incremented, so a forgotten tracer degrades into a
    fixed-size window instead of an OOM.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = int(capacity)
        self._spans: deque[Span] = deque(maxlen=max(1, self.capacity))
        self._lock = threading.Lock()
        self.added = 0
        self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def add(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(span)
            self.added += 1

    def extend(self, spans) -> None:
        for span in spans:
            self.add(span)

    def drain(self) -> list[Span]:
        """Remove and return every buffered span (oldest first)."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
        return spans

    def snapshot(self) -> list[Span]:
        """A copy of the buffered spans without consuming them."""
        with self._lock:
            return list(self._spans)

    @property
    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "buffered": len(self._spans),
                "added": self.added,
                "dropped": self.dropped,
                "capacity": self.capacity,
            }


class TraceSink:
    """Append-only JSONL trace writer with fsync-on-rotate durability.

    The sink owns its file handle; a header record is written on open (and
    after every rotation) so each physical file is independently decodable
    by :func:`repro.obs.spans.read_trace`.  ``max_bytes`` bounds the live
    file: when exceeded, the current file is fsync-ed, atomically renamed
    to ``<path>.<n>`` (with a parent-directory fsync so the rename itself
    is durable), and a fresh file is started.
    """

    def __init__(
        self,
        path: str | Path,
        trace_id: str,
        *,
        scope: str = "main",
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        self.path = Path(path)
        self.trace_id = str(trace_id)
        self.scope = str(scope)
        self.max_bytes = int(max_bytes)
        self.rotations = 0
        self.spans_written = 0
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        if self._handle.tell() == 0:
            self._write_header()

    def _write_header(self) -> None:
        record = header_record(self.trace_id, scope=self.scope)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def write(self, spans) -> int:
        """Append ``spans``; rotate first if the live file is over budget."""
        with self._lock:
            if self._handle.closed:
                return 0
            if self.max_bytes and self._handle.tell() >= self.max_bytes:
                self._rotate_locked()
            for span in spans:
                self._handle.write(span.encode_line() + "\n")
                self.spans_written += 1
            self._handle.flush()
            return self.spans_written

    def _rotate_locked(self) -> None:
        # Durability: contents reach disk before the rename, and the rename
        # reaches disk via the parent-directory fsync — the same
        # write/fsync/replace/dirsync sequence as a serving publish.  The
        # import is deferred because repro.serving imports repro.obs at the
        # package level; by the time a sink rotates, both are initialised.
        from repro.serving.integrity import sync_dir

        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self.rotations += 1
        rotated = self.path.with_name(f"{self.path.name}.{self.rotations}")
        os.replace(self.path, rotated)
        sync_dir(self.path.parent)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._write_header()

    def flush(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()

    def close(self) -> None:
        """Flush, fsync and close the live file (idempotent)."""
        with self._lock:
            if self._handle.closed:
                return
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    @property
    def stats(self) -> dict[str, int]:
        return {
            "spans_written": self.spans_written,
            "rotations": self.rotations,
        }
