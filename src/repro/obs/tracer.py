"""The context-var span stack: no-op-by-default tracing primitives.

Production code is instrumented with three primitives:

``with span("commit.delta", step=3):``
    Times a block and attaches attributes.
``@traced("stream.warm_start_coverage")``
    Times every call of a function.
``event("memo.target_hit")``
    Stamps a zero-duration marker on the innermost open span.

All three are **branch-only no-ops** until a :class:`Tracer` is installed
(:func:`install` / :func:`tracing` / :func:`bootstrap_from_env`): the
disabled fast path is one module-global read and a ``None`` check, no
allocation, no contextvar access — safe to leave on the hottest paths.

Determinism: span ids are ``"{scope}:{n}"`` with ``n`` from a seeded
counter; timing uses the monotonic ``perf_counter`` clock only for
*measurement*, never for ids or control flow, so a traced run's
computational outputs stay byte-identical to an untraced run.

The span stack lives in a :mod:`contextvars` variable, so it is correct
under both threads and asyncio tasks (each task sees its own stack, and a
span opened before an ``await`` is still current after it).
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import os
import threading
from contextlib import contextmanager
from time import perf_counter

from repro.obs.export import DEFAULT_FLUSH_EVERY, SpanCollector, TraceSink
from repro.obs.spans import Span, SpanEvent

__all__ = [
    "Tracer",
    "active",
    "bootstrap_from_env",
    "event",
    "install",
    "span",
    "traced",
    "tracing",
    "uninstall",
]

#: environment carrier for cross-process bootstrap (set by ``repro trace
#: record`` / ``--trace`` so spawned serving workers trace themselves)
ENV_TRACE_FILE = "REPRO_TRACE_FILE"
ENV_TRACE_ID = "REPRO_TRACE_ID"

_CURRENT: contextvars.ContextVar["_SpanHandle | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

_ACTIVE: Tracer | None = None
_GUARD = threading.Lock()


class _NoopSpan:
    """Singleton context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _SpanHandle:
    """An *open* span: context manager that finishes it on exit."""

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start",
        "events",
        "_token",
        "_explicit_parent",
    )

    def __init__(
        self, tracer: "Tracer", name: str, attrs: dict, *, parent: str | None = None
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer.next_span_id()
        self.parent_id: str | None = None
        self.start = 0.0
        self.events: list[SpanEvent] = []
        self._token = None
        self._explicit_parent = parent

    def __enter__(self) -> "_SpanHandle":
        if self._explicit_parent is not None:
            self.parent_id = self._explicit_parent
        else:
            parent = _CURRENT.get()
            self.parent_id = parent.span_id if parent is not None else self.tracer.root_parent
        self._token = _CURRENT.set(self)
        profiler = self.tracer.profiler
        if profiler is not None:
            profiler.on_enter(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = perf_counter() - self.start
        profiler = self.tracer.profiler
        if profiler is not None:
            profiler.on_exit(self)
        if self._token is not None:
            _CURRENT.reset(self._token)
        self.tracer._finish(
            Span(
                span_id=self.span_id,
                name=self.name,
                trace_id=self.tracer.trace_id,
                parent_id=self.parent_id,
                start_s=self.start - self.tracer.epoch,
                duration_s=duration,
                attrs=self.attrs,
                events=self.events,
                scope=self.tracer.scope,
                status="error" if exc_type is not None else "ok",
            )
        )
        return False

    def add_event(self, name: str, attrs: dict) -> None:
        self.events.append(
            SpanEvent(name=name, offset_s=perf_counter() - self.start, attrs=attrs)
        )


class Tracer:
    """One process's tracing session: id allocator + collector + sink.

    Parameters
    ----------
    trace_id:
        Logical trace identity, shared across every process participating
        in one recorded run.  Callers derive it from run parameters (a
        dataset/seed string, a content hash) — never from the clock.
    scope:
        Process-role prefix for span ids (``main``, ``worker-2``,
        ``cell-17``); keeps ids collision-free across processes without
        any coordination.
    collector:
        Ring buffer finished spans land in (a fresh default one if
        omitted).
    sink:
        Optional :class:`~repro.obs.export.TraceSink`; when set, the
        collector is drained into it every ``flush_every`` spans.
    profiler:
        Optional :class:`~repro.obs.profile.SpanProfiler` sampling RSS /
        allocations per span.
    """

    def __init__(
        self,
        trace_id: str,
        *,
        scope: str = "main",
        collector: SpanCollector | None = None,
        sink: TraceSink | None = None,
        profiler=None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        counter_start: int = 1,
    ) -> None:
        self.trace_id = str(trace_id)
        self.scope = str(scope)
        self.collector = collector if collector is not None else SpanCollector()
        self.sink = sink
        self.profiler = profiler
        self.flush_every = max(1, int(flush_every))
        #: parent id adopted by root spans — set when continuing a trace
        #: that began in another process (see :mod:`repro.obs.propagate`)
        self.root_parent: str | None = None
        #: callables invoked with every finished span (metrics bridges)
        self.on_finish: list = []
        self.epoch = perf_counter()
        self._ids = itertools.count(int(counter_start))
        self._id_lock = threading.Lock()
        self._pending = 0

    def next_span_id(self) -> str:
        with self._id_lock:
            return f"{self.scope}:{next(self._ids)}"

    def start_span(
        self, name: str, attrs: dict, *, parent: str | None = None
    ) -> _SpanHandle:
        return _SpanHandle(self, str(name), attrs, parent=parent)

    def _finish(self, span: Span) -> None:
        self.collector.add(span)
        for hook in self.on_finish:
            try:  # a broken metrics bridge must never fail the traced code
                hook(span)
            except Exception:  # reprolint: disable=REP-E601 observability hooks are best-effort side channels
                pass
        if self.sink is not None:
            self._pending += 1
            if self._pending >= self.flush_every:
                self.flush()

    def flush(self) -> None:
        """Drain buffered spans into the sink (no-op without one)."""
        if self.sink is None:
            return
        spans = self.collector.drain()
        self._pending = 0
        if spans:
            self.sink.write(spans)

    def close(self) -> None:
        """Flush and close the sink; the tracer stays usable as buffer-only."""
        if self.sink is not None:
            self.flush()
            self.sink.close()

    def drain_spans(self) -> list[Span]:
        """Consume buffered spans (process-pool workers return these)."""
        return self.collector.drain()

    @property
    def stats(self) -> dict:
        out = dict(self.collector.stats)
        if self.sink is not None:
            out.update(self.sink.stats)
        return out


# --------------------------------------------------------------------------- #
# Process-global installation (mirrors repro.utils.faults)
# --------------------------------------------------------------------------- #
def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process's active tracer (replacing any)."""
    global _ACTIVE
    with _GUARD:
        _ACTIVE = tracer
    return tracer


def uninstall() -> None:
    """Disable tracing; every primitive becomes a branch-only no-op again."""
    global _ACTIVE
    with _GUARD:
        _ACTIVE = None


def active() -> Tracer | None:
    """The installed tracer, or ``None``."""
    return _ACTIVE


def span(name: str, _parent: str | None = None, **attrs):
    """Context manager timing a block — a shared no-op when disabled.

    ``_parent`` overrides the contextvar stack: a request handler that
    decoded a remote :class:`~repro.obs.propagate.TraceContext` passes its
    ``parent_id`` here so the local span attaches under the remote caller.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    return tracer.start_span(name, attrs, parent=_parent)


def event(name: str, **attrs) -> None:
    """Stamp a zero-duration marker on the innermost open span, if any."""
    if _ACTIVE is None:
        return
    handle = _CURRENT.get()
    if handle is not None:
        handle.add_event(str(name), attrs)


def traced(name: str | None = None, **attrs):
    """Decorator form of :func:`span` (label defaults to the qualname)."""

    def wrap(fn):
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            tracer = _ACTIVE
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.start_span(label, dict(attrs)):
                return fn(*args, **kwargs)

        return inner

    return wrap


@contextmanager
def tracing(
    trace_id: str,
    *,
    scope: str = "main",
    path=None,
    profiler=None,
    flush_every: int = DEFAULT_FLUSH_EVERY,
    export_env: bool = False,
):
    """``with``-scoped tracer install that always flushes and uninstalls.

    ``path`` attaches a JSONL sink; ``export_env=True`` additionally
    exports the trace file/id into the environment so spawned worker
    processes pick the session up via :func:`bootstrap_from_env`.
    """
    sink = TraceSink(path, trace_id, scope=scope) if path is not None else None
    tracer = Tracer(
        trace_id, scope=scope, sink=sink, profiler=profiler, flush_every=flush_every
    )
    exported = False
    if export_env and path is not None:
        os.environ[ENV_TRACE_FILE] = str(path)
        os.environ[ENV_TRACE_ID] = str(trace_id)
        exported = True
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()
        tracer.close()
        if exported:
            os.environ.pop(ENV_TRACE_FILE, None)
            os.environ.pop(ENV_TRACE_ID, None)


def bootstrap_from_env(scope: str) -> Tracer | None:
    """Install a tracer in a spawned process if the parent exported one.

    Reads ``REPRO_TRACE_FILE``/``REPRO_TRACE_ID``; the child writes its
    spans to the ``<file>.<scope>`` sidecar so concurrent processes never
    interleave writes in one file.  Returns the installed tracer, or
    ``None`` when the environment carries no trace session.
    """
    base = os.environ.get(ENV_TRACE_FILE)
    if not base:
        return None
    trace_id = os.environ.get(ENV_TRACE_ID, "trace")
    path = f"{base}.{scope}"
    sink = TraceSink(path, trace_id, scope=scope)
    return install(Tracer(trace_id, scope=scope, sink=sink))
