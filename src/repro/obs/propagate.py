"""Trace-context propagation across process boundaries.

A :class:`TraceContext` is the minimal baton one process hands another:
``(trace_id, parent_id)``.  The receiving process continues the trace by
creating spans whose root parent is ``parent_id`` — the reassembled span
forest then renders as one tree in ``repro trace report``.

Four carriers are supported, one per boundary in the system:

HTTP headers (``x-repro-trace``)
    Injected by clients (worker ``/delta`` forwarding, benchmarks) and
    extracted by :func:`repro.serving.server.read_http_request`.
:class:`~repro.streaming.delta.GraphDelta` metadata (``trace`` key)
    Stamped by the serving commit path; survives
    ``to_payload``/``from_payload`` byte-exactly, which means it also
    rides inside every WAL ``delta`` record for free — replay can
    correlate its recovery spans with the original commit.
WAL records
    Via the delta payload above; :func:`extract_delta` on a replayed
    delta returns the original commit's context.
Process-pool submissions
    :func:`inject_payload` / :func:`extract_payload` on the picklable
    dict :func:`repro.runner.executor._worker` receives.

Every carrier round-trips exactly: ``extract(inject(ctx)) == ctx``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.obs import tracer as _tracer

__all__ = [
    "TRACE_HEADER",
    "METADATA_KEY",
    "PAYLOAD_KEY",
    "TraceContext",
    "current_context",
    "continue_trace",
    "inject_headers",
    "extract_headers",
    "stamp_delta",
    "extract_delta",
    "inject_payload",
    "extract_payload",
]

#: HTTP header carrying the serialized context (lowercase: the repo's
#: header parsing normalises to lowercase)
TRACE_HEADER = "x-repro-trace"
#: key under :attr:`repro.streaming.delta.GraphDelta.metadata`
METADATA_KEY = "trace"
#: key in process-pool submission payload dicts
PAYLOAD_KEY = "trace"


@dataclass(frozen=True)
class TraceContext:
    """The cross-process baton: which trace, and which span to parent to."""

    trace_id: str
    parent_id: str | None = None

    # -- wire codecs ---------------------------------------------------- #
    def to_header(self) -> str:
        """``trace_id;parent_id`` (semicolon is illegal in both fields)."""
        return f"{self.trace_id};{self.parent_id or ''}"

    @classmethod
    def from_header(cls, value: str) -> "TraceContext | None":
        if not value or ";" not in value:
            return None
        trace_id, _, parent = value.partition(";")
        if not trace_id:
            return None
        return cls(trace_id=trace_id, parent_id=parent or None)

    def to_obj(self) -> dict:
        obj: dict = {"trace_id": self.trace_id}
        if self.parent_id is not None:
            obj["parent_id"] = self.parent_id
        return obj

    @classmethod
    def from_obj(cls, obj) -> "TraceContext | None":
        if not isinstance(obj, dict) or "trace_id" not in obj:
            return None
        parent = obj.get("parent_id")
        return cls(
            trace_id=str(obj["trace_id"]),
            parent_id=str(parent) if parent is not None else None,
        )


def current_context() -> TraceContext | None:
    """The active tracer's context at the innermost open span, or ``None``."""
    tracer = _tracer.active()
    if tracer is None:
        return None
    handle = _tracer._CURRENT.get()
    parent = handle.span_id if handle is not None else tracer.root_parent
    return TraceContext(trace_id=tracer.trace_id, parent_id=parent)


def continue_trace(
    ctx: TraceContext,
    *,
    scope: str,
    collector=None,
    sink=None,
) -> "_tracer.Tracer":
    """A tracer whose root spans parent to ``ctx`` (for worker processes)."""
    tracer = _tracer.Tracer(ctx.trace_id, scope=scope, collector=collector, sink=sink)
    tracer.root_parent = ctx.parent_id
    return tracer


# --------------------------------------------------------------------------- #
# Carrier: HTTP headers
# --------------------------------------------------------------------------- #
def inject_headers(headers: dict | None = None) -> dict:
    """Add the current context to ``headers`` (a new dict when ``None``).

    No-op (returns ``headers`` unchanged, or ``{}``) while tracing is
    disabled, so callers can invoke it unconditionally.
    """
    headers = {} if headers is None else headers
    ctx = current_context()
    if ctx is not None:
        headers[TRACE_HEADER] = ctx.to_header()
    return headers


def extract_headers(headers: dict | None) -> TraceContext | None:
    """The context carried by a (lowercase-keyed) header dict, if any."""
    if not headers:
        return None
    return TraceContext.from_header(headers.get(TRACE_HEADER, ""))


# --------------------------------------------------------------------------- #
# Carrier: GraphDelta metadata (and, through it, WAL delta records)
# --------------------------------------------------------------------------- #
def stamp_delta(delta, ctx: TraceContext | None = None):
    """A copy of ``delta`` whose metadata carries ``ctx`` (default: current).

    Returns ``delta`` unchanged when there is no context to stamp — the
    untraced payload stays byte-identical to pre-tracing builds.
    """
    if ctx is None:
        ctx = current_context()
    if ctx is None:
        return delta
    metadata = dict(delta.metadata)
    metadata[METADATA_KEY] = ctx.to_obj()
    return replace(delta, metadata=metadata)


def extract_delta(delta) -> TraceContext | None:
    """The context stamped on ``delta``'s metadata, if any."""
    return TraceContext.from_obj(delta.metadata.get(METADATA_KEY))


# --------------------------------------------------------------------------- #
# Carrier: process-pool submission payloads
# --------------------------------------------------------------------------- #
def inject_payload(payload: dict) -> dict:
    """Stamp the current context into a picklable submission dict."""
    ctx = current_context()
    if ctx is not None:
        payload[PAYLOAD_KEY] = ctx.to_obj()
    return payload


def extract_payload(payload: dict) -> TraceContext | None:
    """The context a submission dict carries, if any."""
    return TraceContext.from_obj(payload.get(PAYLOAD_KEY))
