"""Opt-in per-span memory profiling (RSS + Python allocations).

Disabled tracers never touch this module; a :class:`SpanProfiler` is only
consulted when explicitly attached to a :class:`~repro.obs.tracer.Tracer`
(``repro trace record --profile`` / ``Tracer(profiler=...)``).  Each span
then gains two attributes:

``rss_kb``
    Resident set size at span exit (kilobytes).
``rss_delta_kb``
    RSS growth across the span — the signal for "which stage allocated".
``alloc_delta_kb`` (only while :mod:`tracemalloc` is tracing)
    Net Python-level allocation across the span.

RSS is read from ``/proc/self/statm`` when available (Linux, one small
read) with a :mod:`resource` fallback, so profiling needs no third-party
dependency.
"""

from __future__ import annotations

import os
import tracemalloc

__all__ = ["SpanProfiler", "sample_rss_kb"]

_PAGE_KB = os.sysconf("SC_PAGE_SIZE") // 1024 if hasattr(os, "sysconf") else 4
_STATM = "/proc/self/statm"


def sample_rss_kb() -> int:
    """Current resident set size in kilobytes (0 when unreadable)."""
    try:
        with open(_STATM, "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_KB
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS
        return int(usage if usage < 1 << 40 else usage // 1024)
    except Exception:  # reprolint: disable=REP-E601 profiling is best-effort; a missing resource module must not crash the traced code
        return 0


class SpanProfiler:
    """Samples memory on span enter/exit and stamps deltas into attrs."""

    def __init__(self, *, allocations: bool = False) -> None:
        #: also record tracemalloc deltas (requires tracemalloc started;
        #: :meth:`start_allocation_tracing` does so on demand)
        self.allocations = bool(allocations)
        self._started_tracemalloc = False
        if self.allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def on_enter(self, handle) -> None:
        handle.attrs["_rss_enter_kb"] = sample_rss_kb()
        if self.allocations and tracemalloc.is_tracing():
            handle.attrs["_alloc_enter"] = tracemalloc.get_traced_memory()[0]

    def on_exit(self, handle) -> None:
        rss = sample_rss_kb()
        enter = handle.attrs.pop("_rss_enter_kb", rss)
        handle.attrs["rss_kb"] = rss
        handle.attrs["rss_delta_kb"] = rss - enter
        alloc_enter = handle.attrs.pop("_alloc_enter", None)
        if alloc_enter is not None and tracemalloc.is_tracing():
            current = tracemalloc.get_traced_memory()[0]
            handle.attrs["alloc_delta_kb"] = (current - alloc_enter) // 1024

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False
