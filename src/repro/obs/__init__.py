"""Observability: span tracing, trace export and opt-in profiling.

The :mod:`repro.obs` package is the repo's end-to-end tracing substrate:

:mod:`repro.obs.spans`
    Span/event dataclasses and the JSONL trace codec (schema v1).
:mod:`repro.obs.tracer`
    The context-var span stack: ``span()`` context managers, ``traced()``
    decorators and ``event()`` markers that are **branch-only no-ops**
    until a :class:`~repro.obs.tracer.Tracer` is installed.
:mod:`repro.obs.export`
    Bounded ring-buffer collection plus an append-only JSONL sink with
    fsync-on-rotate durability.
:mod:`repro.obs.propagate`
    Trace-context carriers across process boundaries: HTTP headers,
    :class:`~repro.streaming.delta.GraphDelta` metadata (and therefore WAL
    records), and process-pool submissions.
:mod:`repro.obs.profile`
    Opt-in per-span RSS / allocation sampling.

Determinism contract: tracing never influences computation.  Span ids come
from a seeded counter (never ``time``/``random``), so a traced run produces
byte-identical condensation/serving artifacts to an untraced one — traces
are a *side channel*, like logs.
"""

from __future__ import annotations

from repro.obs.export import SpanCollector, TraceSink
from repro.obs.propagate import TraceContext, current_context
from repro.obs.spans import TRACE_SCHEMA_VERSION, Span, SpanEvent
from repro.obs.tracer import (
    Tracer,
    active,
    bootstrap_from_env,
    event,
    install,
    span,
    traced,
    tracing,
    uninstall,
)

__all__ = [
    "Span",
    "SpanEvent",
    "SpanCollector",
    "TraceSink",
    "TraceContext",
    "Tracer",
    "TRACE_SCHEMA_VERSION",
    "active",
    "bootstrap_from_env",
    "current_context",
    "event",
    "install",
    "span",
    "traced",
    "tracing",
    "uninstall",
]
