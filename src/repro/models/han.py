"""HAN — Heterogeneous graph Attention Network (Wang et al., WWW 2019).

A meta-path-based HGNN with *semantic-level attention*: every meta-path
feature block is projected and the model learns one global attention weight
per meta-path via a small scoring network, then fuses semantics as the
attention-weighted sum.  (Node-level attention is replaced by the mean
aggregator per the SeHGNN observation the paper relies on — see DESIGN.md.)
"""

from __future__ import annotations

import numpy as np

from repro.models.base import HGNNClassifier
from repro.nn.autograd import Tensor, concat, stack
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module

__all__ = ["HANModule", "HAN"]


class HANModule(Module):
    """Semantic attention fusion over per-meta-path projections."""

    def __init__(
        self,
        feature_dims: dict[str, int],
        hidden_dim: int,
        num_classes: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.keys = sorted(feature_dims)
        self._projections: dict[str, Linear] = {}
        for key in self.keys:
            layer = Linear(feature_dims[key], hidden_dim, rng=rng)
            self.register_module(f"proj_{key}", layer)
            self._projections[key] = layer
        self.attention_hidden = Linear(hidden_dim, hidden_dim, rng=rng)
        self.attention_vector = Linear(hidden_dim, 1, bias=False, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.classifier = Linear(hidden_dim, num_classes, rng=rng)

    def forward(self, inputs: dict[str, Tensor]) -> Tensor:
        projected = [self._projections[key](inputs[key]).tanh() for key in self.keys]
        # Semantic attention: one scalar score per meta-path, shared by all nodes.
        scores = [
            self.attention_vector(self.attention_hidden(block).tanh()).mean(axis=0)
            for block in projected
        ]
        weights = concat(scores, axis=-1).softmax(axis=-1)
        stacked = stack(projected, axis=0)  # (L, N, H)
        weighted = stacked * weights.reshape(len(self.keys), 1, 1)
        fused = weighted.sum(axis=0)
        fused = self.dropout(fused)
        return self.classifier(fused)


class HAN(HGNNClassifier):
    """Classifier wrapper around :class:`HANModule`."""

    name = "HAN"

    def _build_module(
        self, feature_dims: dict[str, int], num_classes: int, rng: np.random.Generator
    ) -> Module:
        return HANModule(
            feature_dims, self.config.hidden_dim, num_classes, self.config.dropout, rng
        )
