"""Pre-computed meta-path feature propagation.

Following the scalable-HGNN design the paper builds on (NARS, SeHGNN), the
expensive neighbour aggregation is moved to a pre-processing step: for every
meta-path ``P`` anchored at the target type we compute

    H_P = Â_P  X_{source(P)}

with the row-normalised meta-path adjacency of Eq. 1.  Each HGNN in
:mod:`repro.models` is then a (differently-structured) classifier over the
bag ``{H_P}`` plus the raw target features, which is exactly the behavioural
split the paper exploits: *semantic* fusion differs per architecture while
*neighbour* aggregation is a shared mean aggregator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.metapaths import MetaPath, enumerate_metapaths, metapath_adjacency
from repro.hetero.graph import HeteroGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.context import CondensationContext

__all__ = [
    "SELF_FEATURE_KEY",
    "propagate_metapath_features",
    "standardize_features",
    "row_normalize_features",
]

SELF_FEATURE_KEY = "self"


def propagate_metapath_features(
    graph: HeteroGraph,
    *,
    max_hops: int = 2,
    max_paths: int = 16,
    include_self: bool = True,
    context: "CondensationContext | None" = None,
) -> dict[str, np.ndarray]:
    """Compute meta-path aggregated features for every target-type node.

    Returns a mapping from meta-path name (``"paper-author"`` style, plus the
    special ``"self"`` key for raw target features) to a dense feature matrix
    with one row per target node.  The key set depends only on the schema and
    ``max_hops``, so features computed on a condensed graph and on the full
    graph are directly comparable — which is what lets a model trained on the
    condensed graph be evaluated on the original graph.

    A matching :class:`~repro.core.context.CondensationContext` short-cuts
    the computation with its memoized feature blocks.
    """
    if context is not None and context.matches(graph, max_hops=max_hops, max_paths=max_paths):
        # Copies, not the cached arrays: callers may mutate the returned
        # blocks in place (the non-context path below also returns fresh
        # arrays), which must never poison the shared context memo.
        blocks = {
            key: block.copy()
            for key, block in context.target_feature_blocks().items()
            if include_self or key != SELF_FEATURE_KEY
        }
        return blocks
    target = graph.schema.target_type
    features: dict[str, np.ndarray] = {}
    if include_self:
        features[SELF_FEATURE_KEY] = graph.features[target].copy()
    metapaths: list[MetaPath] = enumerate_metapaths(
        graph.schema, target, max_hops, max_paths=max_paths
    )
    for metapath in metapaths:
        adjacency = metapath_adjacency(graph, metapath, normalize=True)
        features[str(metapath)] = np.asarray(adjacency @ graph.features[metapath.end])
    return features


def standardize_features(features: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Per-feature z-score standardisation of every meta-path feature block.

    Standardising each block independently keeps the semantic-fusion modules
    well conditioned.  Because the statistics are computed on the graph at
    hand, this is only appropriate when train and evaluation features come
    from the *same* graph (e.g. the coreset embeddings or the gradient-
    matching baselines); the HGNN classifiers use
    :func:`row_normalize_features` instead so that features computed on a
    tiny condensed graph remain directly comparable to features computed on
    the full graph.
    """
    standardized: dict[str, np.ndarray] = {}
    for key, block in features.items():
        mean = block.mean(axis=0, keepdims=True)
        std = block.std(axis=0, keepdims=True)
        std = np.where(std < 1e-8, 1.0, std)
        standardized[key] = (block - mean) / std
    return standardized


def row_normalize_features(features: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """L2-normalise every row of every meta-path feature block.

    Row-wise normalisation is independent of how many nodes the graph has,
    which makes the feature spaces of a condensed graph and of the original
    graph directly comparable — a requirement of the paper's protocol (train
    on the condensed graph, test on the full graph).

    All-zero rows — e.g. nodes isolated by a streaming delta removal, whose
    propagated features vanish — are divided by 1 instead of their zero
    norm: **zero rows stay exactly zero**, they never become NaN.
    """
    normalized: dict[str, np.ndarray] = {}
    for key, block in features.items():
        norms = np.linalg.norm(block, axis=1, keepdims=True)
        norms = np.where(norms < 1e-10, 1.0, norms)
        normalized[key] = block / norms
    return normalized
