"""HeteroSGC — the simplest heterogeneous relay model.

This is the model HGCond is forced to use as its relay (Section III of the
paper): a *linear* model that projects every meta-path feature block into a
shared space, averages the semantics with equal weights, and applies a single
linear classifier.  No non-linearity, no attention — which is precisely why
graphs condensed against it generalise poorly to richer HGNNs.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import HGNNClassifier
from repro.nn.autograd import Tensor, stack
from repro.nn.layers import Linear
from repro.nn.module import Module

__all__ = ["HeteroSGCModule", "HeteroSGC"]


class HeteroSGCModule(Module):
    """Mean semantic fusion of linearly projected meta-path features."""

    def __init__(
        self, feature_dims: dict[str, int], hidden_dim: int, num_classes: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.keys = sorted(feature_dims)
        self._projections: dict[str, Linear] = {}
        for key in self.keys:
            layer = Linear(feature_dims[key], hidden_dim, rng=rng)
            self.register_module(f"proj_{key}", layer)
            self._projections[key] = layer
        self.classifier = Linear(hidden_dim, num_classes, rng=rng)

    def forward(self, inputs: dict[str, Tensor]) -> Tensor:
        projected = [self._projections[key](inputs[key]) for key in self.keys]
        fused = stack(projected, axis=0).mean(axis=0)
        return self.classifier(fused)


class HeteroSGC(HGNNClassifier):
    """Classifier wrapper around :class:`HeteroSGCModule`."""

    name = "HeteroSGC"

    def _build_module(
        self, feature_dims: dict[str, int], num_classes: int, rng: np.random.Generator
    ) -> Module:
        return HeteroSGCModule(feature_dims, self.config.hidden_dim, num_classes, rng)
