"""Shared HGNN classifier interface.

Every HGNN in this package follows the evaluation protocol of the paper:

1. ``fit(condensed_graph)`` — pre-compute meta-path features on the training
   graph and train the architecture-specific semantic-fusion module;
2. ``predict(full_graph)`` / ``evaluate(full_graph)`` — pre-compute the same
   meta-path features on the evaluation graph (typically the original,
   uncondensed graph) and report test-split accuracy.

Subclasses only implement :meth:`HGNNClassifier._build_module`, which returns
a :class:`~repro.nn.module.Module` mapping the dict of per-meta-path feature
tensors to class logits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.hetero.graph import HeteroGraph
from repro.nn.autograd import Tensor, no_grad
from repro.nn.metrics import accuracy, macro_f1, micro_f1
from repro.nn.module import Module
from repro.nn.trainer import TrainConfig, Trainer, TrainResult
from repro.models.propagation import propagate_metapath_features, row_normalize_features
from repro.utils.rng import ensure_rng

__all__ = ["HGNNConfig", "HGNNClassifier"]


@dataclass(frozen=True)
class HGNNConfig:
    """Hyper-parameters shared by every HGNN classifier.

    Defaults follow Section V-B of the paper: learning rate ``0.001``,
    dropout ``0.5``, hidden dimension ``128`` (scaled down to 64 by most
    benchmark scripts for speed).
    """

    hidden_dim: int = 64
    dropout: float = 0.5
    lr: float = 0.01
    weight_decay: float = 5e-4
    epochs: int = 150
    patience: int = 25
    max_hops: int = 2
    max_paths: int = 16
    seed: int = 0


class HGNNClassifier:
    """Base class implementing the fit / predict / evaluate protocol."""

    name = "hgnn"

    def __init__(self, config: HGNNConfig | None = None, **overrides: object) -> None:
        base = config or HGNNConfig()
        if overrides:
            base = HGNNConfig(**{**base.__dict__, **overrides})
        self.config = base
        self._module: Module | None = None
        self._trainer: Trainer | None = None
        self._feature_keys: list[str] | None = None
        self._feature_dims: dict[str, int] | None = None
        self._num_classes: int | None = None
        self.train_result: TrainResult | None = None

    # ------------------------------------------------------------------ #
    # Subclass hook
    # ------------------------------------------------------------------ #
    def _build_module(
        self, feature_dims: dict[str, int], num_classes: int, rng: np.random.Generator
    ) -> Module:
        raise NotImplementedError

    def _select_feature_keys(self, all_keys: list[str]) -> list[str]:
        """Which meta-path feature blocks this architecture consumes.

        The default keeps everything; meta-path-free architectures (HGB,
        RGCN) override this to restrict themselves to short paths.
        """
        return all_keys

    # ------------------------------------------------------------------ #
    # Public protocol
    # ------------------------------------------------------------------ #
    def fit(self, graph: HeteroGraph) -> TrainResult:
        """Train on ``graph`` (usually a condensed graph) and return the result."""
        if graph.splits.train.size == 0:
            raise ModelError("training graph has an empty train split")
        rng = ensure_rng(self.config.seed)
        features = self._prepare_features(graph)
        self._feature_keys = self._select_feature_keys(sorted(features))
        if not self._feature_keys:
            raise ModelError("no meta-path features available for this architecture")
        self._feature_dims = {key: features[key].shape[1] for key in self._feature_keys}
        self._num_classes = graph.schema.num_classes
        self._module = self._build_module(self._feature_dims, self._num_classes, rng)
        self._trainer = Trainer(
            self._module,
            TrainConfig(
                lr=self.config.lr,
                weight_decay=self.config.weight_decay,
                epochs=self.config.epochs,
                patience=self.config.patience,
            ),
        )
        inputs = self._to_tensors(features)
        self.train_result = self._trainer.fit(
            inputs, graph.labels, graph.splits.train, graph.splits.val
        )
        return self.train_result

    def fit_from_features(
        self,
        features: dict[str, np.ndarray],
        labels: np.ndarray,
        num_classes: int,
        *,
        train_idx: np.ndarray | None = None,
        val_idx: np.ndarray | None = None,
    ) -> TrainResult:
        """Train directly on pre-computed meta-path features.

        Used by the optimisation-based condensers (GCond, HGCond), whose
        output is a synthetic :class:`~repro.baselines.base.CondensedFeatureSet`
        rather than a graph.  The feature keys must match what
        :func:`~repro.models.propagation.propagate_metapath_features` produces
        on the evaluation graph, so that :meth:`predict` works unchanged.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if not features:
            raise ModelError("fit_from_features requires at least one feature block")
        rng = ensure_rng(self.config.seed)
        self._feature_keys = self._select_feature_keys(sorted(features))
        if not self._feature_keys:
            raise ModelError("no feature blocks usable by this architecture")
        self._feature_dims = {key: features[key].shape[1] for key in self._feature_keys}
        self._num_classes = int(num_classes)
        self._module = self._build_module(self._feature_dims, self._num_classes, rng)
        self._trainer = Trainer(
            self._module,
            TrainConfig(
                lr=self.config.lr,
                weight_decay=self.config.weight_decay,
                epochs=self.config.epochs,
                patience=self.config.patience,
            ),
        )
        if train_idx is None:
            train_idx = np.arange(labels.shape[0], dtype=np.int64)
        inputs = self._to_tensors(features)
        self.train_result = self._trainer.fit(inputs, labels, train_idx, val_idx)
        return self.train_result

    def predict(self, graph: HeteroGraph) -> np.ndarray:
        """Predict a class for every target-type node of ``graph``."""
        module = self._require_fitted()
        features = self._prepare_features(graph)
        inputs = self._to_tensors(features)
        module.eval()
        with no_grad():
            logits = module(inputs)
        return np.argmax(logits.numpy(), axis=-1)

    # ------------------------------------------------------------------ #
    # Persistence protocol (serving bundles)
    # ------------------------------------------------------------------ #
    def export_propagation_state(self) -> dict[str, object]:
        """JSON-safe description of the fitted propagation interface.

        Everything :meth:`restore_state` needs besides the raw weights: the
        hyper-parameter config, which meta-path feature blocks the module
        consumes and with which dimensionality, and the class count.  This
        is the "propagation state" of a serving bundle — it pins the exact
        feature interface the weights were trained against, so a restored
        model refuses graphs whose schema drifted.
        """
        self._require_fitted()
        assert self._feature_keys is not None and self._feature_dims is not None
        return {
            "config": dict(self.config.__dict__),
            "feature_keys": list(self._feature_keys),
            "feature_dims": {key: int(dim) for key, dim in self._feature_dims.items()},
            "num_classes": int(self._num_classes or 0),
        }

    def restore_state(
        self, state: dict[str, object], weights: dict[str, np.ndarray]
    ) -> "HGNNClassifier":
        """Rebuild the fitted module from :meth:`export_propagation_state` output.

        The module is reconstructed deterministically from the stored
        propagation state and the ``weights`` are loaded strictly
        (:class:`~repro.errors.StateDictError` on any mismatch), so a
        restored classifier predicts byte-identically to the one that was
        exported.
        """
        feature_keys = [str(key) for key in state["feature_keys"]]
        feature_dims = {
            str(key): int(dim) for key, dim in dict(state["feature_dims"]).items()
        }
        num_classes = int(state["num_classes"])
        rng = ensure_rng(self.config.seed)
        module = self._build_module(feature_dims, num_classes, rng)
        # All-or-nothing: a StateDictError must leave this classifier
        # unfitted rather than looking fitted with random-init weights.
        module.load_state_dict(weights, strict=True)
        module.eval()
        self._feature_keys = feature_keys
        self._feature_dims = feature_dims
        self._num_classes = num_classes
        self._module = module
        return self

    def evaluate(self, graph: HeteroGraph, indices: np.ndarray | None = None) -> float:
        """Accuracy on ``graph`` (test split by default)."""
        indices = graph.splits.test if indices is None else np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise ModelError("evaluation split is empty")
        predictions = self.predict(graph)
        return accuracy(predictions[indices], graph.labels[indices])

    def evaluate_metrics(
        self, graph: HeteroGraph, indices: np.ndarray | None = None
    ) -> dict[str, float]:
        """Accuracy, micro-F1 and macro-F1 on ``graph``."""
        indices = graph.splits.test if indices is None else np.asarray(indices, dtype=np.int64)
        predictions = self.predict(graph)
        labels = graph.labels[indices]
        preds = predictions[indices]
        classes = graph.schema.num_classes
        return {
            "accuracy": accuracy(preds, labels),
            "micro_f1": micro_f1(preds, labels, classes),
            "macro_f1": macro_f1(preds, labels, classes),
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def prepare_features(self, graph: HeteroGraph, *, context=None) -> dict[str, np.ndarray]:
        """The exact (normalised) feature blocks :meth:`predict` consumes.

        Exposed for the serving engine, which pre-computes these once per
        model epoch instead of on every request.  A matching
        :class:`~repro.core.context.CondensationContext` (the incremental
        condenser's live context) short-cuts the propagation with its
        memoized blocks — the same arrays the condensation stages use.
        """
        features = propagate_metapath_features(
            graph,
            max_hops=self.config.max_hops,
            max_paths=self.config.max_paths,
            context=context,
        )
        return row_normalize_features(features)

    def _prepare_features(self, graph: HeteroGraph) -> dict[str, np.ndarray]:
        return self.prepare_features(graph)

    def _to_tensors(self, features: dict[str, np.ndarray]) -> dict[str, Tensor]:
        assert self._feature_keys is not None and self._feature_dims is not None
        inputs: dict[str, Tensor] = {}
        for key in self._feature_keys:
            if key not in features:
                raise ModelError(
                    f"feature block {key!r} missing on evaluation graph; "
                    "train and evaluation graphs must share a schema"
                )
            block = features[key]
            if block.shape[1] != self._feature_dims[key]:
                raise ModelError(
                    f"feature block {key!r} has dimension {block.shape[1]}, "
                    f"expected {self._feature_dims[key]}"
                )
            inputs[key] = Tensor(block)
        return inputs

    def _require_fitted(self) -> Module:
        if self._module is None:
            raise ModelError(f"{type(self).__name__} must be fitted before prediction")
        return self._module

    @property
    def num_parameters(self) -> int:
        """Number of trainable parameters (0 before fitting)."""
        return self._module.num_parameters() if self._module is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(hidden={self.config.hidden_dim})"
