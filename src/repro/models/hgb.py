"""HGB — the Simple-HGN baseline of Lv et al. (KDD 2021), simplified.

A meta-path-free architecture: it only consumes the raw target features and
the *one-hop* relation aggregations (no long meta-paths), adds a learnable
edge-type embedding to each relation's message, and fuses messages with a
gated sum followed by an MLP head with a residual connection — mirroring the
multi-layer GAT backbone + learnable edge-type embedding design of HGB.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import HGNNClassifier
from repro.models.propagation import SELF_FEATURE_KEY
from repro.nn.autograd import Tensor, concat, stack
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module

__all__ = ["HGBModule", "HGB"]


class HGBModule(Module):
    """Gated one-hop relation fusion with edge-type embeddings."""

    def __init__(
        self,
        feature_dims: dict[str, int],
        hidden_dim: int,
        num_classes: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.keys = sorted(feature_dims)
        self._projections: dict[str, Linear] = {}
        self._gates: dict[str, Linear] = {}
        for key in self.keys:
            proj = Linear(feature_dims[key], hidden_dim, rng=rng)
            gate = Linear(feature_dims[key], 1, rng=rng)
            self.register_module(f"proj_{key}", proj)
            self.register_module(f"gate_{key}", gate)
            self._projections[key] = proj
            self._gates[key] = gate
        self.edge_type_embedding = self.register_parameter(
            "edge_type_embedding", 0.01 * rng.standard_normal((len(self.keys), hidden_dim))
        )
        self.dropout = Dropout(dropout, rng=rng)
        self.hidden = Linear(hidden_dim, hidden_dim, rng=rng)
        self.output = Linear(hidden_dim, num_classes, rng=rng)
        self_dim = feature_dims.get(SELF_FEATURE_KEY, feature_dims[self.keys[0]])
        self._self_key = SELF_FEATURE_KEY if SELF_FEATURE_KEY in feature_dims else self.keys[0]
        self.residual = Linear(self_dim, num_classes, rng=rng)

    def forward(self, inputs: dict[str, Tensor]) -> Tensor:
        messages = []
        gates = []
        for index, key in enumerate(self.keys):
            message = self._projections[key](inputs[key])
            message = message + self.edge_type_embedding.take_rows(np.array([index]))
            messages.append(message.leaky_relu())
            gates.append(self._gates[key](inputs[key]))
        attention = concat(gates, axis=-1).softmax(axis=-1)  # (N, L)
        stacked = stack(messages, axis=1)  # (N, L, H)
        weights = attention.reshape(attention.shape[0], len(self.keys), 1)
        fused = (stacked * weights).sum(axis=1)
        fused = self.dropout(fused)
        hidden = self.hidden(fused).relu()
        hidden = self.dropout(hidden)
        return self.output(hidden) + self.residual(inputs[self._self_key])

    # ------------------------------------------------------------------ #


class HGB(HGNNClassifier):
    """Classifier wrapper around :class:`HGBModule` (one-hop semantics only)."""

    name = "HGB"

    def _select_feature_keys(self, all_keys: list[str]) -> list[str]:
        """HGB is meta-path-free: keep the self block and one-hop relations."""
        short = [
            key
            for key in all_keys
            if key == SELF_FEATURE_KEY or key.count("-") <= 1
        ]
        return short or all_keys

    def _build_module(
        self, feature_dims: dict[str, int], num_classes: int, rng: np.random.Generator
    ) -> Module:
        return HGBModule(
            feature_dims, self.config.hidden_dim, num_classes, self.config.dropout, rng
        )
