"""RGCN — Relational GCN (Schlichtkrull et al., ESWC 2018), simplified.

A meta-path-free relational model: one weight matrix per relation (here, per
one-hop semantic block), messages summed with a normalising 1/L factor, plus
a self-loop transform — the classic RGCN layer expressed over pre-computed
per-relation mean aggregations.  A second dense layer provides the usual
two-layer depth.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import HGNNClassifier
from repro.models.propagation import SELF_FEATURE_KEY
from repro.nn.autograd import Tensor, stack
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module

__all__ = ["RGCNModule", "RGCN"]


class RGCNModule(Module):
    """Per-relation weight matrices with summed messages and a self-loop."""

    def __init__(
        self,
        feature_dims: dict[str, int],
        hidden_dim: int,
        num_classes: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.keys = sorted(k for k in feature_dims if k != SELF_FEATURE_KEY)
        self._relation_weights: dict[str, Linear] = {}
        for key in self.keys:
            layer = Linear(feature_dims[key], hidden_dim, bias=False, rng=rng)
            self.register_module(f"rel_{key}", layer)
            self._relation_weights[key] = layer
        self_dim = feature_dims.get(SELF_FEATURE_KEY)
        self._self_key = SELF_FEATURE_KEY if self_dim is not None else None
        if self_dim is None:
            self_dim = feature_dims[self.keys[0]]
            self._self_key = self.keys[0]
        self.self_loop = Linear(self_dim, hidden_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.output = Linear(hidden_dim, num_classes, rng=rng)

    def forward(self, inputs: dict[str, Tensor]) -> Tensor:
        messages = [self._relation_weights[key](inputs[key]) for key in self.keys]
        if messages:
            summed = stack(messages, axis=0).sum(axis=0)
            hidden = summed + self.self_loop(inputs[self._self_key])
        else:
            hidden = self.self_loop(inputs[self._self_key])
        hidden = self.dropout(hidden.relu())
        return self.output(hidden)


class RGCN(HGNNClassifier):
    """Classifier wrapper around :class:`RGCNModule` (one-hop relations only)."""

    name = "RGCN"

    def _select_feature_keys(self, all_keys: list[str]) -> list[str]:
        short = [
            key
            for key in all_keys
            if key == SELF_FEATURE_KEY or key.count("-") <= 1
        ]
        return short or all_keys

    def _build_module(
        self, feature_dims: dict[str, int], num_classes: int, rng: np.random.Generator
    ) -> Module:
        return RGCNModule(
            feature_dims, self.config.hidden_dim, num_classes, self.config.dropout, rng
        )
