"""Heterogeneous graph neural networks used to evaluate condensed graphs."""

from repro.models.base import HGNNClassifier, HGNNConfig
from repro.models.han import HAN, HANModule
from repro.models.hetero_sgc import HeteroSGC, HeteroSGCModule
from repro.models.hgb import HGB, HGBModule
from repro.models.hgt import HGT, HGTModule
from repro.models.propagation import (
    SELF_FEATURE_KEY,
    propagate_metapath_features,
    standardize_features,
)
from repro.models.rgcn import RGCN, RGCNModule
from repro.models.sehgnn import SeHGNN, SeHGNNModule

MODEL_REGISTRY: dict[str, type[HGNNClassifier]] = {
    "heterosgc": HeteroSGC,
    "sehgnn": SeHGNN,
    "han": HAN,
    "hgt": HGT,
    "hgb": HGB,
    "rgcn": RGCN,
}


def get_model(name: str, **kwargs: object) -> HGNNClassifier:
    """Instantiate a registered HGNN by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key](**kwargs)


__all__ = [
    "HGNNClassifier",
    "HGNNConfig",
    "HeteroSGC",
    "HeteroSGCModule",
    "SeHGNN",
    "SeHGNNModule",
    "HAN",
    "HANModule",
    "HGT",
    "HGTModule",
    "HGB",
    "HGBModule",
    "RGCN",
    "RGCNModule",
    "MODEL_REGISTRY",
    "get_model",
    "SELF_FEATURE_KEY",
    "propagate_metapath_features",
    "standardize_features",
]
