"""HGT — Heterogeneous Graph Transformer (Hu et al., WWW 2020), simplified.

A meta-path-free transformer-style HGNN.  In this pre-computed-feature
formulation each semantic (meta-path feature block) plays the role of a
relation-specific message; the model computes *per-node* attention over the
semantics using learned query/key projections (a scaled dot-product between a
node-specific query derived from the raw features and a per-semantic key),
which distinguishes it from HAN's global semantic attention.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import HGNNClassifier
from repro.models.propagation import SELF_FEATURE_KEY
from repro.nn.autograd import Tensor, concat, stack
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module

__all__ = ["HGTModule", "HGT"]


class HGTModule(Module):
    """Per-node scaled dot-product attention over semantics."""

    def __init__(
        self,
        feature_dims: dict[str, int],
        hidden_dim: int,
        num_classes: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.keys = sorted(feature_dims)
        self.hidden_dim = hidden_dim
        self._value_proj: dict[str, Linear] = {}
        self._key_proj: dict[str, Linear] = {}
        for key in self.keys:
            value_layer = Linear(feature_dims[key], hidden_dim, rng=rng)
            key_layer = Linear(feature_dims[key], hidden_dim, rng=rng)
            self.register_module(f"value_{key}", value_layer)
            self.register_module(f"key_{key}", key_layer)
            self._value_proj[key] = value_layer
            self._key_proj[key] = key_layer
        query_dim = feature_dims.get(SELF_FEATURE_KEY, feature_dims[self.keys[0]])
        self._query_key = SELF_FEATURE_KEY if SELF_FEATURE_KEY in feature_dims else self.keys[0]
        self.query_proj = Linear(query_dim, hidden_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.output = Linear(hidden_dim, num_classes, rng=rng)
        self.residual = Linear(query_dim, num_classes, rng=rng)

    def forward(self, inputs: dict[str, Tensor]) -> Tensor:
        query = self.query_proj(inputs[self._query_key])  # (N, H)
        values = [self._value_proj[key](inputs[key]).relu() for key in self.keys]
        keys_proj = [self._key_proj[key](inputs[key]) for key in self.keys]
        scale = 1.0 / np.sqrt(self.hidden_dim)
        scores = [
            ((query * key_block).sum(axis=-1, keepdims=True) * scale)
            for key_block in keys_proj
        ]  # each (N, 1)
        attention = concat(scores, axis=-1).softmax(axis=-1)  # (N, L)
        stacked = stack(values, axis=1)  # (N, L, H)
        weights = attention.reshape(attention.shape[0], len(self.keys), 1)
        fused = (stacked * weights).sum(axis=1)  # (N, H)
        fused = self.dropout(fused.relu())
        return self.output(fused) + self.residual(inputs[self._query_key])


class HGT(HGNNClassifier):
    """Classifier wrapper around :class:`HGTModule`."""

    name = "HGT"

    def _build_module(
        self, feature_dims: dict[str, int], num_classes: int, rng: np.random.Generator
    ) -> Module:
        return HGTModule(
            feature_dims, self.config.hidden_dim, num_classes, self.config.dropout, rng
        )
