"""SeHGNN — simple and efficient heterogeneous GNN (Yang et al., AAAI 2023).

The strongest evaluation model in the paper ("the most powerful SOTA HGNN",
Section III-A).  Neighbour aggregation is a pre-processing mean aggregator
(provided by :mod:`repro.models.propagation`); the network itself projects
every meta-path feature block, **concatenates** all semantics and fuses them
with an MLP — concatenation being the key difference from the averaging
fusion of HeteroSGC and the attention fusion of HAN/HGT.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import HGNNClassifier
from repro.nn.autograd import Tensor, concat
from repro.nn.layers import MLP, Dropout, Linear
from repro.nn.module import Module

__all__ = ["SeHGNNModule", "SeHGNN"]


class SeHGNNModule(Module):
    """Concatenation-based semantic fusion with an MLP head."""

    def __init__(
        self,
        feature_dims: dict[str, int],
        hidden_dim: int,
        num_classes: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.keys = sorted(feature_dims)
        self._projections: dict[str, Linear] = {}
        for key in self.keys:
            layer = Linear(feature_dims[key], hidden_dim, rng=rng)
            self.register_module(f"proj_{key}", layer)
            self._projections[key] = layer
        self.dropout = Dropout(dropout, rng=rng)
        self.head = MLP(
            hidden_dim * len(self.keys),
            hidden_dim,
            num_classes,
            num_layers=2,
            dropout=dropout,
            rng=rng,
        )

    def forward(self, inputs: dict[str, Tensor]) -> Tensor:
        projected = [self._projections[key](inputs[key]).relu() for key in self.keys]
        fused = concat(projected, axis=-1)
        fused = self.dropout(fused)
        return self.head(fused)


class SeHGNN(HGNNClassifier):
    """Classifier wrapper around :class:`SeHGNNModule`."""

    name = "SeHGNN"

    def _build_module(
        self, feature_dims: dict[str, int], num_classes: int, rng: np.random.Generator
    ) -> Module:
        return SeHGNNModule(
            feature_dims, self.config.hidden_dim, num_classes, self.config.dropout, rng
        )
