"""Heterogeneous-graph schema objects.

A heterogeneous graph is described by a :class:`HeteroSchema`: the set of
node types, the set of typed relations between them, which node type carries
the prediction labels (the *target type* in the paper's terminology) and how
many classes that target type has.

The schema is deliberately a plain, immutable value object.  Everything else
in the library (dataset generators, meta-path enumeration, condensers)
consumes the schema rather than re-deriving structural facts from raw
adjacency dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

__all__ = ["Relation", "HeteroSchema"]


@dataclass(frozen=True)
class Relation:
    """A typed, directed relation ``src --name--> dst``.

    Attributes
    ----------
    name:
        Unique relation identifier, e.g. ``"paper-author"``.
    src:
        Source node type.
    dst:
        Destination node type.

    Examples
    --------
    >>> writes = Relation("writes", "author", "paper")
    >>> writes.reversed()
    Relation(name='writes__rev', src='paper', dst='author')
    """

    name: str
    src: str
    dst: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if not self.src or not self.dst:
            raise SchemaError(f"relation {self.name!r} must name both endpoint types")

    @property
    def reversed_name(self) -> str:
        """Canonical name of the reverse relation."""
        return f"{self.name}__rev"

    def reversed(self) -> "Relation":
        """Return the reverse relation (``dst --> src``)."""
        return Relation(self.reversed_name, self.dst, self.src)


@dataclass(frozen=True)
class HeteroSchema:
    """Static description of a heterogeneous graph.

    Attributes
    ----------
    node_types:
        All node types in the graph.
    relations:
        All directed relations.  Multiple relations between the same ordered
        pair of node types are allowed (knowledge graphs such as Freebase and
        AM use this heavily).
    target_type:
        The node type that carries labels and drives the downstream task.
    num_classes:
        Number of classes of the target type.

    Examples
    --------
    >>> schema = HeteroSchema(
    ...     node_types=("paper", "author"),
    ...     relations=(Relation("writes", "author", "paper"),),
    ...     target_type="paper",
    ...     num_classes=3,
    ... )
    >>> schema.other_types()
    ('author',)
    >>> [r.name for r in schema.relations_between("author", "paper")]
    ['writes']
    """

    node_types: tuple[str, ...]
    relations: tuple[Relation, ...]
    target_type: str
    num_classes: int
    name: str = field(default="hetero-graph")

    def __post_init__(self) -> None:
        if len(set(self.node_types)) != len(self.node_types):
            raise SchemaError("node types must be unique")
        if not self.node_types:
            raise SchemaError("schema must declare at least one node type")
        if self.target_type not in self.node_types:
            raise SchemaError(
                f"target type {self.target_type!r} is not among node types {self.node_types}"
            )
        if self.num_classes < 2:
            raise SchemaError(f"num_classes must be >= 2, got {self.num_classes}")
        names = [r.name for r in self.relations]
        if len(set(names)) != len(names):
            raise SchemaError("relation names must be unique")
        known = set(self.node_types)
        for rel in self.relations:
            if rel.src not in known or rel.dst not in known:
                raise SchemaError(
                    f"relation {rel.name!r} references unknown node type "
                    f"({rel.src!r} -> {rel.dst!r})"
                )

    # ------------------------------------------------------------------ #
    # Lookup helpers
    # ------------------------------------------------------------------ #
    def relation(self, name: str) -> Relation:
        """Return the relation named ``name``."""
        for rel in self.relations:
            if rel.name == name:
                return rel
        raise SchemaError(f"unknown relation {name!r}")

    def relations_from(self, src: str) -> tuple[Relation, ...]:
        """All relations whose source type is ``src``."""
        return tuple(r for r in self.relations if r.src == src)

    def relations_between(self, src: str, dst: str) -> tuple[Relation, ...]:
        """All relations from ``src`` to ``dst``."""
        return tuple(r for r in self.relations if r.src == src and r.dst == dst)

    def neighbor_types(self, node_type: str) -> tuple[str, ...]:
        """Node types directly connected to ``node_type`` in either direction."""
        out = {r.dst for r in self.relations if r.src == node_type}
        out |= {r.src for r in self.relations if r.dst == node_type}
        out.discard(node_type)
        return tuple(sorted(out))

    def other_types(self) -> tuple[str, ...]:
        """All node types except the target type."""
        return tuple(t for t in self.node_types if t != self.target_type)

    def is_homogeneous(self) -> bool:
        """A graph with a single node type and a single relation is homogeneous."""
        return len(self.node_types) == 1 and len(self.relations) <= 1

    def with_reverse_relations(self) -> "HeteroSchema":
        """Return a schema augmented with a reverse relation for every relation.

        The generators build graphs with explicit forward relations only; the
        meta-path machinery needs to walk edges in both directions, which is
        simpler when reverse relations are first-class schema members.
        """
        existing_pairs = {(r.src, r.dst, r.name) for r in self.relations}
        extra: list[Relation] = []
        for rel in self.relations:
            rev = rel.reversed()
            if (rev.src, rev.dst, rev.name) not in existing_pairs:
                extra.append(rev)
        return HeteroSchema(
            node_types=self.node_types,
            relations=self.relations + tuple(extra),
            target_type=self.target_type,
            num_classes=self.num_classes,
            name=self.name,
        )
