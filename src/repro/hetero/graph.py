"""The :class:`HeteroGraph` container.

This is the central data structure of the library: a typed multi-relational
graph with per-type feature matrices, labels on the target type, and
train/validation/test splits.  All condensation methods consume and produce
``HeteroGraph`` instances, so the class also implements induced subgraph
extraction (the operation every selection-based reducer boils down to) and a
homogeneous projection used by the GCond baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphConstructionError
from repro.hetero.schema import HeteroSchema, Relation
from repro.hetero.sparse import boolean_csr, sparse_storage_bytes, to_csr

__all__ = ["NodeSplits", "HeteroGraph", "combine_typed_adjacency"]


def combine_typed_adjacency(
    schema: HeteroSchema,
    num_nodes: dict[str, int],
    adjacency: dict[str, sp.csr_matrix],
    src: str,
    dst: str,
) -> sp.csr_matrix:
    """Combined boolean adjacency between two node types.

    The single implementation of the relation-merging rule: every relation
    connecting the ordered pair is summed, relations stored in the opposite
    direction are transposed in, and the result is binarised.  Used by
    :meth:`HeteroGraph.typed_adjacency` (which adds memoization) and by the
    streaming delta applier to rebuild the *pre-delta* view from a
    snapshotted adjacency dict — one rule, two callers, no drift.
    """
    combined = sp.csr_matrix((num_nodes[src], num_nodes[dst]))
    for rel in schema.relations_between(src, dst):
        if rel.name in adjacency:
            combined = combined + adjacency[rel.name]
    for rel in schema.relations_between(dst, src):
        if rel.name in adjacency:
            combined = combined + adjacency[rel.name].T.tocsr()
    return boolean_csr(combined)


@dataclass(frozen=True)
class NodeSplits:
    """Train/validation/test index arrays over the target node type."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def __post_init__(self) -> None:
        for name in ("train", "val", "test"):
            idx = np.asarray(getattr(self, name), dtype=np.int64)
            object.__setattr__(self, name, idx)
        overlap = (
            set(self.train.tolist()) & set(self.val.tolist())
            | set(self.train.tolist()) & set(self.test.tolist())
            | set(self.val.tolist()) & set(self.test.tolist())
        )
        if overlap:
            raise GraphConstructionError(f"splits overlap on {len(overlap)} nodes")

    @property
    def sizes(self) -> tuple[int, int, int]:
        """Sizes of the train/val/test splits."""
        return len(self.train), len(self.val), len(self.test)

    def restricted_to(self, kept: np.ndarray, mapping: dict[int, int]) -> "NodeSplits":
        """Remap splits after an induced subgraph keeps only ``kept`` nodes."""
        kept_set = set(int(i) for i in kept)

        def _remap(indices: np.ndarray) -> np.ndarray:
            return np.array(
                [mapping[int(i)] for i in indices if int(i) in kept_set], dtype=np.int64
            )

        return NodeSplits(_remap(self.train), _remap(self.val), _remap(self.test))


@dataclass
class HeteroGraph:
    """A heterogeneous graph with features, labels and splits.

    Attributes
    ----------
    schema:
        The static type-level description of the graph.
    num_nodes:
        Number of nodes of each node type.
    adjacency:
        One CSR matrix per relation name; the matrix for relation
        ``src -> dst`` has shape ``(num_nodes[src], num_nodes[dst])``.
    features:
        One dense feature matrix per node type (types may have different
        feature dimensionality, as in the HGB benchmark).
    labels:
        Integer class labels of the target-type nodes.
    splits:
        Train/validation/test indices over the target type.

    Examples
    --------
    >>> from repro.datasets import load_acm
    >>> graph = load_acm(scale=0.1, seed=0)
    >>> graph.schema.target_type
    'paper'
    >>> graph.total_nodes == sum(graph.num_nodes.values())
    True
    >>> graph.storage_bytes() > 0
    True
    """

    schema: HeteroSchema
    num_nodes: dict[str, int]
    adjacency: dict[str, sp.csr_matrix]
    features: dict[str, np.ndarray]
    labels: np.ndarray
    splits: NodeSplits
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.adjacency = {name: to_csr(matrix) for name, matrix in self.adjacency.items()}
        self.features = {
            node_type: np.asarray(matrix, dtype=np.float64)
            for node_type, matrix in self.features.items()
        }
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check internal consistency against the schema; raise on violation."""
        for node_type in self.schema.node_types:
            if node_type not in self.num_nodes:
                raise GraphConstructionError(f"missing node count for type {node_type!r}")
            if self.num_nodes[node_type] < 0:
                raise GraphConstructionError(f"negative node count for type {node_type!r}")
            if node_type not in self.features:
                raise GraphConstructionError(f"missing feature matrix for type {node_type!r}")
            feats = self.features[node_type]
            if feats.ndim != 2 or feats.shape[0] != self.num_nodes[node_type]:
                raise GraphConstructionError(
                    f"feature matrix for {node_type!r} has shape {feats.shape}, "
                    f"expected ({self.num_nodes[node_type]}, d)"
                )
        known_relations = {rel.name for rel in self.schema.relations}
        for name, matrix in self.adjacency.items():
            if name not in known_relations:
                raise GraphConstructionError(f"adjacency for unknown relation {name!r}")
            rel = self.schema.relation(name)
            expected = (self.num_nodes[rel.src], self.num_nodes[rel.dst])
            if matrix.shape != expected:
                raise GraphConstructionError(
                    f"adjacency {name!r} has shape {matrix.shape}, expected {expected}"
                )
        target_count = self.num_nodes[self.schema.target_type]
        if self.labels.shape != (target_count,):
            raise GraphConstructionError(
                f"labels have shape {self.labels.shape}, expected ({target_count},)"
            )
        labeled = self.labels[self.labels >= 0]
        if labeled.size and labeled.max() >= self.schema.num_classes:
            raise GraphConstructionError(
                f"label {int(labeled.max())} out of range for {self.schema.num_classes} classes"
            )
        for split_name, idx in (
            ("train", self.splits.train),
            ("val", self.splits.val),
            ("test", self.splits.test),
        ):
            if idx.size and (idx.min() < 0 or idx.max() >= target_count):
                raise GraphConstructionError(f"{split_name} split indexes out of range")

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def target_type(self) -> str:
        """Node type carrying the labels."""
        return self.schema.target_type

    @property
    def num_classes(self) -> int:
        """Number of target classes."""
        return self.schema.num_classes

    @property
    def total_nodes(self) -> int:
        """Total node count across all types."""
        return int(sum(self.num_nodes.values()))

    @property
    def total_edges(self) -> int:
        """Total edge count across all relations."""
        return int(sum(matrix.nnz for matrix in self.adjacency.values()))

    def relation_matrix(self, name: str) -> sp.csr_matrix:
        """Adjacency matrix of relation ``name`` (zero matrix if absent)."""
        if name in self.adjacency:
            return self.adjacency[name]
        rel = self.schema.relation(name)
        return sp.csr_matrix((self.num_nodes[rel.src], self.num_nodes[rel.dst]))

    def typed_adjacency(self, src: str, dst: str) -> sp.csr_matrix:
        """Combined boolean adjacency from type ``src`` to type ``dst``.

        Sums every relation (including stored reverse relations) connecting
        the ordered pair and also transposes relations stored in the opposite
        direction, so the result captures *any* connectivity between the two
        types.

        The combined matrix is memoized per ``(src, dst)``, keyed by the
        fingerprints of the participating relation matrices — replacing a
        relation's matrix (the streaming delta applier always replaces, and
        never edits, them) or structurally mutating one in place invalidates
        the entry, so meta-path composition after a delta rebuilds exactly
        the touched pairs.
        """
        from repro.hetero.sparse import matrix_fingerprint

        names = [
            rel.name
            for pair in ((src, dst), (dst, src))
            for rel in self.schema.relations_between(*pair)
            if rel.name in self.adjacency
        ]
        shape = (self.num_nodes[src], self.num_nodes[dst])
        deps = (shape,) + tuple(
            (name, matrix_fingerprint(self.adjacency[name])) for name in names
        )
        cache = self.__dict__.setdefault("_typed_adjacency_cache", {})
        slot = cache.get((src, dst))
        if slot is not None and slot[0] == deps:
            return slot[1]
        combined = combine_typed_adjacency(
            self.schema, self.num_nodes, self.adjacency, src, dst
        )
        # Pin the participating matrices so the ids in `deps` stay unique.
        cache[(src, dst)] = (deps, combined, [self.adjacency[n] for n in names])
        return combined

    def connected_type_pairs(self) -> list[tuple[str, str]]:
        """Ordered type pairs with at least one edge between them."""
        pairs: set[tuple[str, str]] = set()
        for name, matrix in self.adjacency.items():
            if matrix.nnz == 0:
                continue
            rel = self.schema.relation(name)
            pairs.add((rel.src, rel.dst))
            pairs.add((rel.dst, rel.src))
        return sorted(pairs)

    def class_distribution(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Class histogram of the target labels (optionally restricted)."""
        labels = self.labels if indices is None else self.labels[np.asarray(indices, dtype=int)]
        labels = labels[labels >= 0]
        return np.bincount(labels, minlength=self.schema.num_classes)

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def induced_subgraph(self, kept_nodes: dict[str, np.ndarray]) -> "HeteroGraph":
        """Return the subgraph induced by keeping ``kept_nodes`` per type.

        Types missing from ``kept_nodes`` keep all of their nodes.  The
        target-type splits are remapped: selected nodes keep their original
        split membership, dropped nodes simply disappear.
        """
        keep: dict[str, np.ndarray] = {}
        for node_type in self.schema.node_types:
            if node_type in kept_nodes:
                idx = np.unique(np.asarray(kept_nodes[node_type], dtype=np.int64))
                if idx.size and (idx.min() < 0 or idx.max() >= self.num_nodes[node_type]):
                    raise GraphConstructionError(
                        f"kept nodes for type {node_type!r} out of range"
                    )
                keep[node_type] = idx
            else:
                keep[node_type] = np.arange(self.num_nodes[node_type], dtype=np.int64)

        mappings = {
            node_type: {int(old): new for new, old in enumerate(keep[node_type])}
            for node_type in self.schema.node_types
        }
        new_counts = {node_type: len(keep[node_type]) for node_type in self.schema.node_types}
        new_features = {
            node_type: self.features[node_type][keep[node_type]]
            for node_type in self.schema.node_types
        }
        new_adjacency: dict[str, sp.csr_matrix] = {}
        for name, matrix in self.adjacency.items():
            rel = self.schema.relation(name)
            sub = matrix[keep[rel.src], :][:, keep[rel.dst]]
            new_adjacency[name] = sub.tocsr()

        target = self.schema.target_type
        new_labels = self.labels[keep[target]]
        new_splits = self.splits.restricted_to(keep[target], mappings[target])
        return HeteroGraph(
            schema=self.schema,
            num_nodes=new_counts,
            adjacency=new_adjacency,
            features=new_features,
            labels=new_labels,
            splits=new_splits,
            metadata=dict(self.metadata),
        )

    def to_homogeneous(self) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
        """Project the graph onto a single homogeneous graph.

        Node features of each type are zero-padded to a common dimension and
        stacked in schema order; adjacency blocks are placed at the
        corresponding offsets.  Returns ``(adjacency, features, labels)``
        where non-target nodes receive label ``-1``.  This is the input
        format of the GCond baseline.
        """
        offsets: dict[str, int] = {}
        cursor = 0
        for node_type in self.schema.node_types:
            offsets[node_type] = cursor
            cursor += self.num_nodes[node_type]
        total = cursor
        max_dim = max(f.shape[1] for f in self.features.values())
        features = np.zeros((total, max_dim), dtype=np.float64)
        for node_type in self.schema.node_types:
            block = self.features[node_type]
            start = offsets[node_type]
            features[start : start + block.shape[0], : block.shape[1]] = block
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        for name, matrix in self.adjacency.items():
            rel = self.schema.relation(name)
            coo = matrix.tocoo()
            rows.append(coo.row + offsets[rel.src])
            cols.append(coo.col + offsets[rel.dst])
        if rows:
            row = np.concatenate(rows)
            col = np.concatenate(cols)
            data = np.ones(row.shape[0], dtype=np.float64)
            adjacency = sp.coo_matrix((data, (row, col)), shape=(total, total)).tocsr()
            adjacency = boolean_csr(adjacency + adjacency.T)
        else:
            adjacency = sp.csr_matrix((total, total))
        labels = np.full(total, -1, dtype=np.int64)
        t_start = offsets[self.schema.target_type]
        labels[t_start : t_start + self.labels.shape[0]] = self.labels
        return adjacency, features, labels

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def storage_bytes(self) -> int:
        """Approximate in-memory size of features + adjacency + labels."""
        total = int(self.labels.nbytes)
        total += sum(int(f.nbytes) for f in self.features.values())
        total += sum(sparse_storage_bytes(m) for m in self.adjacency.values())
        return total

    def copy(self) -> "HeteroGraph":
        """Deep copy of the graph."""
        return HeteroGraph(
            schema=self.schema,
            num_nodes=dict(self.num_nodes),
            adjacency={name: matrix.copy() for name, matrix in self.adjacency.items()},
            features={node_type: feats.copy() for node_type, feats in self.features.items()},
            labels=self.labels.copy(),
            splits=NodeSplits(
                self.splits.train.copy(), self.splits.val.copy(), self.splits.test.copy()
            ),
            metadata=dict(self.metadata),
        )

    def summary(self) -> str:
        """Human-readable one-paragraph description of the graph."""
        counts = ", ".join(f"{t}={self.num_nodes[t]}" for t in self.schema.node_types)
        return (
            f"{self.schema.name}: {self.total_nodes} nodes ({counts}), "
            f"{self.total_edges} edges over {len(self.adjacency)} relations, "
            f"target={self.schema.target_type} with {self.schema.num_classes} classes"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeteroGraph({self.summary()})"


def relation_or_reverse(schema: HeteroSchema, src: str, dst: str) -> list[Relation]:
    """Relations usable to walk from ``src`` to ``dst`` (forward or reverse)."""
    usable = list(schema.relations_between(src, dst))
    usable.extend(rel.reversed() for rel in schema.relations_between(dst, src))
    return usable
