"""Sparse-matrix helpers used throughout the library.

All adjacency matrices are stored as ``scipy.sparse.csr_matrix`` with float
data.  These helpers centralise the normalisations the paper relies on:

* row normalisation (Eq. 1, meta-path composition),
* symmetric normalisation (Eq. 11, personalised PageRank),
* boolean reachability products used by the receptive-field machinery.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "to_csr",
    "row_normalize",
    "symmetric_normalize",
    "boolean_csr",
    "compose_path",
    "degree_vector",
    "sparse_storage_bytes",
    "coo_from_edges",
]


def to_csr(matrix: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Coerce ``matrix`` to a float CSR matrix."""
    if sp.issparse(matrix):
        return matrix.tocsr().astype(np.float64)
    return sp.csr_matrix(np.asarray(matrix, dtype=np.float64))


def coo_from_edges(
    src: np.ndarray, dst: np.ndarray, shape: tuple[int, int], weights: np.ndarray | None = None
) -> sp.csr_matrix:
    """Build a CSR adjacency from parallel source/destination index arrays.

    Duplicate edges are merged by summation and the result is binarised so
    that every edge has unit weight unless explicit ``weights`` are given.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    if weights is None:
        data = np.ones(src.shape[0], dtype=np.float64)
    else:
        data = np.asarray(weights, dtype=np.float64)
        if data.shape != src.shape:
            raise ValueError("weights must match the number of edges")
    matrix = sp.coo_matrix((data, (src, dst)), shape=shape).tocsr()
    matrix.sum_duplicates()
    if weights is None and matrix.nnz:
        matrix.data = np.ones_like(matrix.data)
    return matrix


def row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Row-normalise ``matrix`` so that every non-empty row sums to one."""
    matrix = to_csr(matrix)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.zeros_like(row_sums)
    nonzero = row_sums > 0
    inv[nonzero] = 1.0 / row_sums[nonzero]
    return sp.diags(inv) @ matrix


def symmetric_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Symmetrically normalise ``matrix``: ``D^-1/2 A D^-1/2``.

    For rectangular (bipartite) matrices the row and column degree vectors
    are used on their respective sides, matching the treatment of meta-path
    adjacency matrices in Eq. 11.
    """
    matrix = to_csr(matrix)
    row_deg = np.asarray(matrix.sum(axis=1)).ravel()
    col_deg = np.asarray(matrix.sum(axis=0)).ravel()
    row_inv = np.zeros_like(row_deg)
    col_inv = np.zeros_like(col_deg)
    row_nz = row_deg > 0
    col_nz = col_deg > 0
    row_inv[row_nz] = 1.0 / np.sqrt(row_deg[row_nz])
    col_inv[col_nz] = 1.0 / np.sqrt(col_deg[col_nz])
    return sp.diags(row_inv) @ matrix @ sp.diags(col_inv)


#: attribute under which the shared binarised form is cached on a CSR matrix
_BOOLEAN_CACHE_ATTR = "_repro_boolean_csr"


def boolean_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Binarise ``matrix`` (all stored entries become 1.0).

    Already-binarised float CSR inputs are returned *as-is* (no copy), and
    the binarised form of any other matrix object is cached on that object,
    so every consumer of the same adjacency — criterion, similarity, NIM —
    shares a single boolean copy.  Callers must therefore treat the result
    as read-only; adjacency matrices in this library are built once and
    never mutated afterwards.
    """
    cached = getattr(matrix, _BOOLEAN_CACHE_ATTR, None)
    if cached is not None:
        return cached
    if (
        sp.issparse(matrix)
        and matrix.format == "csr"
        and matrix.dtype == np.float64
        and (matrix.nnz == 0 or bool((matrix.data == 1.0).all()))
    ):
        setattr(matrix, _BOOLEAN_CACHE_ATTR, matrix)
        return matrix
    result = to_csr(matrix).copy()
    if result.nnz:
        result.data = np.ones_like(result.data)
    setattr(result, _BOOLEAN_CACHE_ATTR, result)
    try:
        setattr(matrix, _BOOLEAN_CACHE_ATTR, result)
    except AttributeError:  # plain ndarrays cannot carry the cache
        pass
    return result


def compose_path(matrices: list[sp.spmatrix], *, normalize: bool = True) -> sp.csr_matrix:
    """Compose a chain of adjacency matrices into one meta-path adjacency.

    Implements Eq. 1 of the paper: the k-hop meta-path adjacency is the
    product of the (row-normalised) per-hop adjacency matrices.

    Parameters
    ----------
    matrices:
        Per-hop adjacency matrices ordered from the target type outwards.
    normalize:
        If True (paper default), each hop is row-normalised before
        multiplication.  If False the raw boolean product is used, which the
        receptive-field machinery prefers.
    """
    if not matrices:
        raise ValueError("compose_path requires at least one matrix")
    result: sp.csr_matrix | None = None
    for matrix in matrices:
        hop = row_normalize(matrix) if normalize else boolean_csr(matrix)
        result = hop if result is None else result @ hop
    assert result is not None
    return result.tocsr()


def degree_vector(matrix: sp.spmatrix, axis: int = 1) -> np.ndarray:
    """Return the degree of every row (axis=1) or column (axis=0)."""
    matrix = to_csr(matrix)
    return np.asarray(matrix.sum(axis=axis)).ravel()


def sparse_storage_bytes(matrix: sp.spmatrix) -> int:
    """Approximate in-memory footprint of a CSR matrix in bytes."""
    matrix = to_csr(matrix)
    return int(matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes)
