"""Sparse-matrix helpers used throughout the library.

All adjacency matrices are stored as ``scipy.sparse.csr_matrix`` with float
data.  These helpers centralise the normalisations the paper relies on:

* row normalisation (Eq. 1, meta-path composition),
* symmetric normalisation (Eq. 11, personalised PageRank),
* boolean reachability products used by the receptive-field machinery.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "to_csr",
    "row_normalize",
    "symmetric_normalize",
    "boolean_csr",
    "compose_path",
    "degree_vector",
    "sparse_storage_bytes",
    "coo_from_edges",
    "cached_csc",
    "matrix_fingerprint",
    "validate_attribute_caches",
]


def to_csr(matrix: sp.spmatrix | np.ndarray) -> sp.csr_matrix:
    """Coerce ``matrix`` to a float CSR matrix."""
    if sp.issparse(matrix):
        return matrix.tocsr().astype(np.float64)
    return sp.csr_matrix(np.asarray(matrix, dtype=np.float64))


def coo_from_edges(
    src: np.ndarray, dst: np.ndarray, shape: tuple[int, int], weights: np.ndarray | None = None
) -> sp.csr_matrix:
    """Build a CSR adjacency from parallel source/destination index arrays.

    Duplicate edges are merged by summation and the result is binarised so
    that every edge has unit weight unless explicit ``weights`` are given.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    if weights is None:
        data = np.ones(src.shape[0], dtype=np.float64)
    else:
        data = np.asarray(weights, dtype=np.float64)
        if data.shape != src.shape:
            raise ValueError("weights must match the number of edges")
    matrix = sp.coo_matrix((data, (src, dst)), shape=shape).tocsr()
    matrix.sum_duplicates()
    if weights is None and matrix.nnz:
        matrix.data = np.ones_like(matrix.data)
    return matrix


def row_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Row-normalise ``matrix`` so that every non-empty row sums to one."""
    matrix = to_csr(matrix)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    inv = np.zeros_like(row_sums)
    nonzero = row_sums > 0
    inv[nonzero] = 1.0 / row_sums[nonzero]
    return sp.diags(inv) @ matrix


def symmetric_normalize(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Symmetrically normalise ``matrix``: ``D^-1/2 A D^-1/2``.

    For rectangular (bipartite) matrices the row and column degree vectors
    are used on their respective sides, matching the treatment of meta-path
    adjacency matrices in Eq. 11.
    """
    matrix = to_csr(matrix)
    row_deg = np.asarray(matrix.sum(axis=1)).ravel()
    col_deg = np.asarray(matrix.sum(axis=0)).ravel()
    row_inv = np.zeros_like(row_deg)
    col_inv = np.zeros_like(col_deg)
    row_nz = row_deg > 0
    col_nz = col_deg > 0
    row_inv[row_nz] = 1.0 / np.sqrt(row_deg[row_nz])
    col_inv[col_nz] = 1.0 / np.sqrt(col_deg[col_nz])
    return sp.diags(row_inv) @ matrix @ sp.diags(col_inv)


#: attribute under which the shared binarised form is cached on a CSR matrix
_BOOLEAN_CACHE_ATTR = "_repro_boolean_csr"

#: attribute holding the fingerprint the derived caches below were built for
_CACHE_TOKEN_ATTR = "_repro_cache_token"

#: every derived structure attribute-cached on a CSR matrix anywhere in the
#: library; all of them are dropped together when the fingerprint changes
_DERIVED_CACHE_ATTRS = (
    _BOOLEAN_CACHE_ATTR,
    "_repro_csc",            # inverted column->row index (coverage_kernels)
    "_repro_canonical",      # canonicalised duplicate-free copy (coverage_kernels)
    "_repro_packed",         # packed uint64 words (coverage_kernels)
    "_repro_nim_bipartite",  # normalised bipartite block matrix (NIM stage)
)


def matrix_fingerprint(matrix: sp.spmatrix) -> tuple:
    """Cheap structural fingerprint of a compressed sparse matrix.

    Captures the shape, the stored-entry count and the *identity* of the
    three index/data buffers.  Every structural mutation scipy performs
    (``setdiag``, ``eliminate_zeros``, ``sum_duplicates``, in-place ``+=``,
    assigning a new ``data`` array, ...) reallocates at least one buffer, so
    a changed fingerprint reliably signals that derived caches are stale.
    The one mutation it cannot see is an element-wise write *into* the
    existing ``data`` buffer (``m.data[k] = v``) — callers doing that must
    rebind the buffer (``m.data = m.data.copy()``) or avoid the shared
    caches.
    """
    return (
        matrix.shape,
        int(matrix.nnz),
        id(matrix.data),
        id(matrix.indices) if hasattr(matrix, "indices") else None,
        id(matrix.indptr) if hasattr(matrix, "indptr") else None,
    )


def validate_attribute_caches(matrix: sp.spmatrix) -> None:
    """Drop every ``_repro_*`` derived cache on ``matrix`` if it is stale.

    Compares the matrix's current :func:`matrix_fingerprint` against the one
    recorded when a derived structure was first cached; on mismatch all
    derived caches are discarded so the next accessor rebuilds them from the
    mutated matrix.  No-op for objects that cannot carry attributes.
    """
    try:
        token = getattr(matrix, _CACHE_TOKEN_ATTR, None)
    except TypeError:  # pragma: no cover - exotic matrix proxies
        return
    current = matrix_fingerprint(matrix)
    if token == current:
        return
    if token is not None:
        for attr in _DERIVED_CACHE_ATTRS:
            try:
                delattr(matrix, attr)
            except AttributeError:
                pass
    try:
        setattr(matrix, _CACHE_TOKEN_ATTR, current)
    except AttributeError:  # plain ndarrays cannot carry the token
        pass


def cached_csc(matrix: sp.csr_matrix) -> sp.csc_matrix:
    """The CSC (inverted column→row) form of ``matrix``, attribute-cached.

    Single owner of the ``_repro_csc`` cache contract: the fingerprint guard
    runs first, so a structurally mutated matrix rebuilds its index.  Shared
    by the decremental coverage kernel, the NIM bipartite builder and the
    streaming delta accounting.
    """
    validate_attribute_caches(matrix)
    csc = getattr(matrix, "_repro_csc", None)
    if csc is None:
        csc = matrix.tocsc()
        try:
            matrix._repro_csc = csc
        except AttributeError:  # pragma: no cover - csr accepts attrs
            pass
    return csc


def boolean_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Binarise ``matrix`` (all stored entries become 1.0).

    Already-binarised float CSR inputs are returned *as-is* (no copy), and
    the binarised form of any other matrix object is cached on that object,
    so every consumer of the same adjacency — criterion, similarity, NIM —
    shares a single boolean copy.  The cache is guarded by
    :func:`matrix_fingerprint`: structurally mutating a cached matrix in
    place (``setdiag``, ``eliminate_zeros``, a streaming delta, ...)
    invalidates the cached binarised form, so the next call re-binarises.
    Callers must still treat the *returned* matrix as read-only — it is
    shared by every consumer of the input.
    """
    if sp.issparse(matrix):
        validate_attribute_caches(matrix)
    cached = getattr(matrix, _BOOLEAN_CACHE_ATTR, None)
    if cached is not None:
        return cached
    if (
        sp.issparse(matrix)
        and matrix.format == "csr"
        and matrix.dtype == np.float64
        and (matrix.nnz == 0 or bool((matrix.data == 1.0).all()))
    ):
        setattr(matrix, _BOOLEAN_CACHE_ATTR, matrix)
        return matrix
    result = to_csr(matrix).copy()
    if result.nnz:
        result.data = np.ones_like(result.data)
    validate_attribute_caches(result)  # stamp the fresh object's fingerprint
    setattr(result, _BOOLEAN_CACHE_ATTR, result)
    try:
        setattr(matrix, _BOOLEAN_CACHE_ATTR, result)
    except AttributeError:  # plain ndarrays cannot carry the cache
        pass
    return result


def compose_path(matrices: list[sp.spmatrix], *, normalize: bool = True) -> sp.csr_matrix:
    """Compose a chain of adjacency matrices into one meta-path adjacency.

    Implements Eq. 1 of the paper: the k-hop meta-path adjacency is the
    product of the (row-normalised) per-hop adjacency matrices.

    Parameters
    ----------
    matrices:
        Per-hop adjacency matrices ordered from the target type outwards.
    normalize:
        If True (paper default), each hop is row-normalised before
        multiplication.  If False the raw boolean product is used, which the
        receptive-field machinery prefers.
    """
    if not matrices:
        raise ValueError("compose_path requires at least one matrix")
    result: sp.csr_matrix | None = None
    for matrix in matrices:
        hop = row_normalize(matrix) if normalize else boolean_csr(matrix)
        result = hop if result is None else result @ hop
    assert result is not None
    return result.tocsr()


def degree_vector(matrix: sp.spmatrix, axis: int = 1) -> np.ndarray:
    """Return the degree of every row (axis=1) or column (axis=0)."""
    matrix = to_csr(matrix)
    return np.asarray(matrix.sum(axis=axis)).ravel()


def sparse_storage_bytes(matrix: sp.spmatrix) -> int:
    """Approximate in-memory footprint of a CSR matrix in bytes."""
    matrix = to_csr(matrix)
    return int(matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes)
