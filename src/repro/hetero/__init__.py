"""Heterogeneous-graph substrate: schema, graph container, sparse helpers."""

from repro.hetero.builder import HeteroGraphBuilder
from repro.hetero.graph import HeteroGraph, NodeSplits
from repro.hetero.io import load_graph, save_graph, saved_size_bytes
from repro.hetero.schema import HeteroSchema, Relation
from repro.hetero.statistics import (
    GraphStats,
    compression_summary,
    degree_statistics,
    graph_stats,
)

__all__ = [
    "HeteroGraph",
    "HeteroGraphBuilder",
    "HeteroSchema",
    "NodeSplits",
    "Relation",
    "GraphStats",
    "graph_stats",
    "degree_statistics",
    "compression_summary",
    "save_graph",
    "load_graph",
    "saved_size_bytes",
]
