"""Incremental construction of :class:`HeteroGraph` instances.

Dataset generators and condensers assemble graphs edge-list by edge-list; the
builder collects those pieces, fills in defaults (empty relations, split
arrays) and performs a single validation pass at :meth:`HeteroGraphBuilder.build`
time.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import GraphConstructionError
from repro.hetero.graph import HeteroGraph, NodeSplits
from repro.hetero.schema import HeteroSchema
from repro.hetero.sparse import coo_from_edges

__all__ = ["HeteroGraphBuilder"]


class HeteroGraphBuilder:
    """Collects node counts, features, edges, labels, then builds a graph.

    Parameters
    ----------
    schema:
        The :class:`~repro.hetero.schema.HeteroSchema` the graph must obey;
        every ``add_nodes`` / ``add_edges`` call is validated against it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.hetero import HeteroGraphBuilder, HeteroSchema, Relation
    >>> schema = HeteroSchema(
    ...     node_types=("paper", "author"),
    ...     relations=(Relation("writes", "author", "paper"),),
    ...     target_type="paper", num_classes=2,
    ... )
    >>> builder = HeteroGraphBuilder(schema)
    >>> builder.add_nodes("paper", 3, np.eye(3))
    >>> builder.add_nodes("author", 2, np.eye(2))
    >>> builder.add_edges("writes", [0, 1], [0, 2])
    >>> builder.set_labels([0, 1, 0])
    >>> graph = builder.build()
    >>> graph.total_nodes
    5
    """

    def __init__(self, schema: HeteroSchema) -> None:
        self.schema = schema
        self._num_nodes: dict[str, int] = {}
        self._features: dict[str, np.ndarray] = {}
        self._edges: dict[str, tuple[list[np.ndarray], list[np.ndarray]]] = {}
        self._labels: np.ndarray | None = None
        self._splits: NodeSplits | None = None
        self._metadata: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    def add_nodes(self, node_type: str, count: int, features: np.ndarray | None = None) -> None:
        """Register ``count`` nodes of ``node_type`` with optional features."""
        if node_type not in self.schema.node_types:
            raise GraphConstructionError(f"unknown node type {node_type!r}")
        if count < 0:
            raise GraphConstructionError(f"node count must be non-negative, got {count}")
        self._num_nodes[node_type] = int(count)
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.shape[0] != count:
                raise GraphConstructionError(
                    f"features for {node_type!r} have {features.shape[0]} rows, expected {count}"
                )
            self._features[node_type] = features

    def set_features(self, node_type: str, features: np.ndarray) -> None:
        """Attach or replace the feature matrix of ``node_type``."""
        if node_type not in self._num_nodes:
            raise GraphConstructionError(f"add_nodes({node_type!r}) must be called first")
        features = np.asarray(features, dtype=np.float64)
        if features.shape[0] != self._num_nodes[node_type]:
            raise GraphConstructionError(
                f"features for {node_type!r} have wrong number of rows"
            )
        self._features[node_type] = features

    def add_edges(self, relation: str, src: np.ndarray, dst: np.ndarray) -> None:
        """Append edges to ``relation`` (may be called repeatedly)."""
        self.schema.relation(relation)  # raises on unknown relation
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        bucket = self._edges.setdefault(relation, ([], []))
        bucket[0].append(src)
        bucket[1].append(dst)

    def set_labels(self, labels: np.ndarray) -> None:
        """Set labels of the target type (``-1`` marks unlabeled nodes)."""
        self._labels = np.asarray(labels, dtype=np.int64)

    def set_splits(self, train: np.ndarray, val: np.ndarray, test: np.ndarray) -> None:
        """Set the train/val/test split over target-type nodes."""
        self._splits = NodeSplits(
            np.asarray(train, dtype=np.int64),
            np.asarray(val, dtype=np.int64),
            np.asarray(test, dtype=np.int64),
        )

    def set_metadata(self, **metadata: object) -> None:
        """Attach free-form metadata to the graph (dataset name, ratios, ...)."""
        self._metadata.update(metadata)

    # ------------------------------------------------------------------ #
    def build(self, *, default_feature_dim: int = 8) -> HeteroGraph:
        """Assemble and validate the :class:`HeteroGraph`.

        Types without explicit features receive an identity-like random
        projection feature (common practice for featureless types in HGB).
        """
        num_nodes = dict(self._num_nodes)
        for node_type in self.schema.node_types:
            num_nodes.setdefault(node_type, 0)

        features = dict(self._features)
        for node_type in self.schema.node_types:
            if node_type not in features:
                # hash() varies with PYTHONHASHSEED across processes; a
                # sha256 of the type name gives the same features everywhere.
                digest = hashlib.sha256(node_type.encode("utf-8")).digest()
                rng = np.random.default_rng(int.from_bytes(digest[:4], "big"))
                features[node_type] = rng.standard_normal(
                    (num_nodes[node_type], default_feature_dim)
                )

        adjacency = {}
        for relation, (src_parts, dst_parts) in self._edges.items():
            rel = self.schema.relation(relation)
            src = np.concatenate(src_parts) if src_parts else np.empty(0, dtype=np.int64)
            dst = np.concatenate(dst_parts) if dst_parts else np.empty(0, dtype=np.int64)
            shape = (num_nodes[rel.src], num_nodes[rel.dst])
            if src.size and (src.max() >= shape[0] or dst.max() >= shape[1]):
                raise GraphConstructionError(f"edge indices out of range for {relation!r}")
            adjacency[relation] = coo_from_edges(src, dst, shape)

        target_count = num_nodes[self.schema.target_type]
        labels = self._labels
        if labels is None:
            labels = np.full(target_count, -1, dtype=np.int64)
        splits = self._splits
        if splits is None:
            splits = NodeSplits(
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        return HeteroGraph(
            schema=self.schema,
            num_nodes=num_nodes,
            adjacency=adjacency,
            features=features,
            labels=labels,
            splits=splits,
            metadata=dict(self._metadata),
        )
