"""Descriptive statistics of heterogeneous graphs.

Used by the reporting layer (Table II-style dataset overviews and the
storage-cost rows of Table VII) and by tests that assert structural
invariants of generated datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hetero.graph import HeteroGraph
from repro.hetero.sparse import degree_vector

__all__ = ["GraphStats", "graph_stats", "degree_statistics", "compression_summary"]


@dataclass(frozen=True)
class GraphStats:
    """Aggregate structural statistics of one :class:`HeteroGraph`."""

    name: str
    total_nodes: int
    total_edges: int
    num_node_types: int
    num_edge_types: int
    target_type: str
    num_classes: int
    nodes_per_type: dict[str, int]
    edges_per_relation: dict[str, int]
    storage_bytes: int

    def as_row(self) -> dict[str, object]:
        """Flatten into a report row (Table II layout)."""
        return {
            "dataset": self.name,
            "#Nodes": self.total_nodes,
            "#Node types": self.num_node_types,
            "#Edges": self.total_edges,
            "#Edge types": self.num_edge_types,
            "Target": self.target_type,
            "#Classes": self.num_classes,
        }


def graph_stats(graph: HeteroGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    return GraphStats(
        name=str(graph.metadata.get("name", graph.schema.name)),
        total_nodes=graph.total_nodes,
        total_edges=graph.total_edges,
        num_node_types=len(graph.schema.node_types),
        num_edge_types=len(graph.adjacency),
        target_type=graph.schema.target_type,
        num_classes=graph.schema.num_classes,
        nodes_per_type=dict(graph.num_nodes),
        edges_per_relation={name: int(m.nnz) for name, m in graph.adjacency.items()},
        storage_bytes=graph.storage_bytes(),
    )


def degree_statistics(graph: HeteroGraph, node_type: str) -> dict[str, float]:
    """Degree summary (over all incident relations) for one node type."""
    degrees = np.zeros(graph.num_nodes[node_type], dtype=np.float64)
    for name, matrix in graph.adjacency.items():
        rel = graph.schema.relation(name)
        if rel.src == node_type:
            degrees += degree_vector(matrix, axis=1)
        if rel.dst == node_type:
            degrees += degree_vector(matrix, axis=0)
    if degrees.size == 0:
        return {"mean": 0.0, "max": 0.0, "min": 0.0, "std": 0.0}
    return {
        "mean": float(degrees.mean()),
        "max": float(degrees.max()),
        "min": float(degrees.min()),
        "std": float(degrees.std()),
    }


def compression_summary(original: HeteroGraph, condensed: HeteroGraph) -> dict[str, float]:
    """Node/edge/storage reduction achieved by a condensed graph."""
    orig_storage = original.storage_bytes()
    cond_storage = condensed.storage_bytes()
    return {
        "node_ratio": condensed.total_nodes / max(original.total_nodes, 1),
        "edge_ratio": condensed.total_edges / max(original.total_edges, 1),
        "storage_ratio": cond_storage / max(orig_storage, 1),
        "storage_reduction_pct": 100.0 * (1.0 - cond_storage / max(orig_storage, 1)),
        "original_storage_mb": orig_storage / 1e6,
        "condensed_storage_mb": cond_storage / 1e6,
    }
