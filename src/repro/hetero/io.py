"""Serialisation of :class:`HeteroGraph` instances to a single ``.npz`` file.

Condensed graphs are cheap to store (that is the point of the paper); this
module makes the storage-cost comparison of Table VII concrete by saving the
exact arrays that constitute a graph and measuring the resulting file.

The array codec is exposed as :func:`graph_to_arrays` /
:func:`graph_from_arrays` with an optional key prefix so other archives can
embed a graph next to their own arrays — the serving model bundles
(:mod:`repro.serving.artifacts`) store a trained model and its condensed
graph in one ``.npz`` this way.

The round-trip is exact for *post-streaming* graphs too: tombstoned node
ids (label ``-1``, zeroed features, absent from every split) survive by
construction because labels, features and the split index arrays are stored
verbatim, and ``metadata`` — which carries dataset provenance — is stored
as JSON rather than silently dropped.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.hetero.graph import HeteroGraph, NodeSplits
from repro.hetero.schema import HeteroSchema, Relation

__all__ = [
    "save_graph",
    "load_graph",
    "graph_to_arrays",
    "graph_from_arrays",
    "json_default",
    "saved_size_bytes",
]


def _schema_to_dict(schema: HeteroSchema) -> dict:
    return {
        "name": schema.name,
        "node_types": list(schema.node_types),
        "relations": [[r.name, r.src, r.dst] for r in schema.relations],
        "target_type": schema.target_type,
        "num_classes": schema.num_classes,
    }


def _schema_from_dict(payload: dict) -> HeteroSchema:
    return HeteroSchema(
        node_types=tuple(payload["node_types"]),
        relations=tuple(Relation(*entry) for entry in payload["relations"]),
        target_type=payload["target_type"],
        num_classes=int(payload["num_classes"]),
        name=payload.get("name", "hetero-graph"),
    )


def json_default(value: object) -> object:
    """Best-effort JSON encoding of metadata values (NumPy scalars etc.).

    Shared ``json.dumps(default=...)`` hook for every archive header this
    library writes (graph metadata here, bundle headers in
    :mod:`repro.serving.artifacts`).
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def _json_array(payload: object) -> np.ndarray:
    encoded = json.dumps(payload, default=json_default).encode("utf-8")
    return np.frombuffer(encoded, dtype=np.uint8)


def _json_value(array: np.ndarray) -> object:
    return json.loads(bytes(array).decode("utf-8"))


def graph_to_arrays(graph: HeteroGraph, *, prefix: str = "") -> dict[str, np.ndarray]:
    """Flatten ``graph`` into named arrays (the exact :func:`save_graph` layout).

    Every key is prepended with ``prefix`` so a caller can merge the result
    into a larger archive without collisions.
    """
    arrays: dict[str, np.ndarray] = {
        f"{prefix}schema_json": _json_array(_schema_to_dict(graph.schema)),
        f"{prefix}metadata_json": _json_array(graph.metadata),
        f"{prefix}labels": graph.labels,
        f"{prefix}split_train": graph.splits.train,
        f"{prefix}split_val": graph.splits.val,
        f"{prefix}split_test": graph.splits.test,
    }
    for node_type, count in graph.num_nodes.items():
        arrays[f"{prefix}count__{node_type}"] = np.array([count], dtype=np.int64)
    for node_type, feats in graph.features.items():
        arrays[f"{prefix}feat__{node_type}"] = feats
    for name, matrix in graph.adjacency.items():
        coo = matrix.tocoo()
        arrays[f"{prefix}adj_row__{name}"] = coo.row.astype(np.int64)
        arrays[f"{prefix}adj_col__{name}"] = coo.col.astype(np.int64)
        arrays[f"{prefix}adj_data__{name}"] = coo.data.astype(np.float64)
        arrays[f"{prefix}adj_shape__{name}"] = np.array(coo.shape, dtype=np.int64)
    return arrays


def graph_from_arrays(
    data: "dict[str, np.ndarray] | np.lib.npyio.NpzFile", *, prefix: str = ""
) -> HeteroGraph:
    """Rebuild a graph from :func:`graph_to_arrays` output.

    ``data`` may be the raw dict or an open ``np.load`` handle; keys not
    starting with ``prefix`` are ignored, so one archive can hold a graph
    alongside unrelated arrays.
    """
    files = data.files if hasattr(data, "files") else list(data)
    keys = [key for key in files if key.startswith(prefix)]
    schema = _schema_from_dict(_json_value(data[f"{prefix}schema_json"]))
    metadata_key = f"{prefix}metadata_json"
    metadata = _json_value(data[metadata_key]) if metadata_key in keys else {}
    num_nodes = {}
    features = {}
    adjacency = {}
    for key in keys:
        stem = key[len(prefix) :]
        if stem.startswith("count__"):
            num_nodes[stem[len("count__") :]] = int(data[key][0])
        elif stem.startswith("feat__"):
            features[stem[len("feat__") :]] = data[key]
        elif stem.startswith("adj_row__"):
            name = stem[len("adj_row__") :]
            shape = tuple(int(v) for v in data[f"{prefix}adj_shape__{name}"])
            adjacency[name] = sp.coo_matrix(
                (
                    data[f"{prefix}adj_data__{name}"],
                    (data[key], data[f"{prefix}adj_col__{name}"]),
                ),
                shape=shape,
            ).tocsr()
    splits = NodeSplits(
        data[f"{prefix}split_train"],
        data[f"{prefix}split_val"],
        data[f"{prefix}split_test"],
    )
    return HeteroGraph(
        schema=schema,
        num_nodes=num_nodes,
        adjacency=adjacency,
        features=features,
        labels=data[f"{prefix}labels"],
        splits=splits,
        metadata=metadata if isinstance(metadata, dict) else {},
    )


def save_graph(graph: HeteroGraph, path: str | Path) -> Path:
    """Write ``graph`` to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **graph_to_arrays(graph))
    return path


def load_graph(path: str | Path) -> HeteroGraph:
    """Load a graph previously written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return graph_from_arrays(data)


def saved_size_bytes(graph: HeteroGraph, path: str | Path) -> int:
    """Save ``graph`` to ``path`` and return the on-disk size in bytes."""
    return Path(save_graph(graph, path)).stat().st_size
