"""Serialisation of :class:`HeteroGraph` instances to a single ``.npz`` file.

Condensed graphs are cheap to store (that is the point of the paper); this
module makes the storage-cost comparison of Table VII concrete by saving the
exact arrays that constitute a graph and measuring the resulting file.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.hetero.graph import HeteroGraph, NodeSplits
from repro.hetero.schema import HeteroSchema, Relation

__all__ = ["save_graph", "load_graph", "saved_size_bytes"]


def _schema_to_dict(schema: HeteroSchema) -> dict:
    return {
        "name": schema.name,
        "node_types": list(schema.node_types),
        "relations": [[r.name, r.src, r.dst] for r in schema.relations],
        "target_type": schema.target_type,
        "num_classes": schema.num_classes,
    }


def _schema_from_dict(payload: dict) -> HeteroSchema:
    return HeteroSchema(
        node_types=tuple(payload["node_types"]),
        relations=tuple(Relation(*entry) for entry in payload["relations"]),
        target_type=payload["target_type"],
        num_classes=int(payload["num_classes"]),
        name=payload.get("name", "hetero-graph"),
    )


def save_graph(graph: HeteroGraph, path: str | Path) -> Path:
    """Write ``graph`` to ``path`` as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "schema_json": np.frombuffer(
            json.dumps(_schema_to_dict(graph.schema)).encode("utf-8"), dtype=np.uint8
        ),
        "labels": graph.labels,
        "split_train": graph.splits.train,
        "split_val": graph.splits.val,
        "split_test": graph.splits.test,
    }
    for node_type, count in graph.num_nodes.items():
        arrays[f"count__{node_type}"] = np.array([count], dtype=np.int64)
    for node_type, feats in graph.features.items():
        arrays[f"feat__{node_type}"] = feats
    for name, matrix in graph.adjacency.items():
        coo = matrix.tocoo()
        arrays[f"adj_row__{name}"] = coo.row.astype(np.int64)
        arrays[f"adj_col__{name}"] = coo.col.astype(np.int64)
        arrays[f"adj_data__{name}"] = coo.data.astype(np.float64)
        arrays[f"adj_shape__{name}"] = np.array(coo.shape, dtype=np.int64)
    np.savez_compressed(path, **arrays)
    return path


def load_graph(path: str | Path) -> HeteroGraph:
    """Load a graph previously written by :func:`save_graph`."""
    with np.load(Path(path), allow_pickle=False) as data:
        schema = _schema_from_dict(json.loads(bytes(data["schema_json"]).decode("utf-8")))
        num_nodes = {}
        features = {}
        adjacency = {}
        for key in data.files:
            if key.startswith("count__"):
                num_nodes[key[len("count__") :]] = int(data[key][0])
            elif key.startswith("feat__"):
                features[key[len("feat__") :]] = data[key]
            elif key.startswith("adj_row__"):
                name = key[len("adj_row__") :]
                shape = tuple(int(v) for v in data[f"adj_shape__{name}"])
                adjacency[name] = sp.coo_matrix(
                    (data[f"adj_data__{name}"], (data[key], data[f"adj_col__{name}"])),
                    shape=shape,
                ).tocsr()
        splits = NodeSplits(data["split_train"], data["split_val"], data["split_test"])
        labels = data["labels"]
    return HeteroGraph(
        schema=schema,
        num_nodes=num_nodes,
        adjacency=adjacency,
        features=features,
        labels=labels,
        splits=splits,
    )


def saved_size_bytes(graph: HeteroGraph, path: str | Path) -> int:
    """Save ``graph`` to ``path`` and return the on-disk size in bytes."""
    return Path(save_graph(graph, path)).stat().st_size
