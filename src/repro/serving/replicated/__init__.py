"""Replicated multi-process serving: durable deltas, shared state, one writer.

The single-process server (:mod:`repro.serving.server`) caps throughput at
one core and loses every applied :class:`~repro.streaming.delta.GraphDelta`
on restart.  This package removes both limits:

* :mod:`repro.serving.replicated.wal` — an append-only, fsync-on-commit
  write-ahead log of GraphDeltas (the ``to_payload`` JSON wire format,
  CRC-framed) with periodic snapshot checkpoints; replay-on-boot truncates
  a torn final record and restores byte-identical model state;
* :mod:`repro.serving.replicated.metrics` — a memory-mapped counter board
  every process in the pool increments lock-free and any process can render
  as a Prometheus ``/metrics`` page;
* :mod:`repro.serving.replicated.admission` — bounded admission with
  load-shedding (HTTP 429) so saturation degrades into fast rejections
  instead of unbounded queues;
* :mod:`repro.serving.replicated.pool` — N predictor worker processes, each
  running the existing :class:`~repro.serving.engine.InferenceSession` over
  *memory-mapped* published model state (an uncompressed
  :func:`~repro.serving.artifacts.save_bundle` directory plus the
  pre-computed logits), all accepting on one ``SO_REUSEPORT`` socket;
* :mod:`repro.serving.replicated.coordinator` — the single writer: it
  applies each delta exactly once through
  :class:`~repro.serving.hotswap.ServingController`, commits it to the WAL,
  publishes the new version directory atomically and fans out swap notices,
  acknowledging the delta only after every live worker serves the new
  version.

``python -m repro serve --workers N --wal PATH`` starts the whole tier;
``benchmarks/bench_serving.py --replicated`` gates it (throughput scaling,
worker-kill survival, coordinator kill -9 + WAL replay byte-identity).
"""

from repro.serving.replicated.admission import AdmissionGate
from repro.serving.replicated.coordinator import (
    ReplicatedConfig,
    ReplicatedServer,
    recover_from_wal,
)
from repro.serving.replicated.metrics import MetricsBoard, render_prometheus
from repro.serving.replicated.pool import WorkerPool, published_session
from repro.serving.replicated.wal import (
    DeltaWAL,
    WALRecord,
    deadletter_path,
    read_deadletter,
    read_wal,
)

__all__ = [
    "AdmissionGate",
    "DeltaWAL",
    "MetricsBoard",
    "ReplicatedConfig",
    "ReplicatedServer",
    "WALRecord",
    "WorkerPool",
    "deadletter_path",
    "published_session",
    "read_deadletter",
    "read_wal",
    "recover_from_wal",
    "render_prometheus",
]
