"""Memory-mapped metrics shared by every process of the serving tier.

Prometheus scrapes hit *one* process, but the pool's counters live in N+1 of
them.  The standard pre-fork answer (and the one used here) is a shared
counter file: a fixed ``(slots, columns)`` grid of ``int64`` cells that every
process maps with ``np.memmap``.  Each process owns exactly one row — slot 0
is the coordinator, slot ``i`` the ``i``-th worker — and only ever writes its
own row, so no locks are needed; any process can *read* the whole grid and
render the aggregate as a Prometheus text page.

Increments are plain read-modify-write stores.  They are not atomic across
processes, which is exactly why the single-writer-per-row layout matters;
readers may observe a counter a few increments stale, which Prometheus
semantics explicitly tolerate.

The column layout is versioned through a JSON sidecar (``<file>.json``); a
process attaching to a board written by an incompatible library version
fails loudly instead of misreading cells.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.errors import ServingError
from repro.obs.spans import SERVING_SPAN_SITES
from repro.utils.faults import KNOWN_SITES
from repro.utils.provenance import git_revision

__all__ = ["MetricsBoard", "SlotMetrics", "render_prometheus"]

#: bump when the column layout changes incompatibly
#: (v3: per-site span-duration histograms — repro_span_seconds)
BOARD_LAYOUT_VERSION = 3

#: endpoints with dedicated request/response counters
ENDPOINTS = ("predict", "delta", "healthz", "stats", "metrics", "other")

#: upper bucket bounds (seconds) of the predict-latency histogram
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)

#: upper bucket bounds (seconds) of the per-span-site histograms — wider
#: than LATENCY_BUCKETS because swaps/commits include condensation+training
SPAN_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)


def _build_columns() -> dict[str, int]:
    columns: dict[str, int] = {}

    def add(name: str) -> None:
        columns[name] = len(columns)

    for endpoint in ENDPOINTS:
        add(f"requests__{endpoint}")
        add(f"responses_2xx__{endpoint}")
        add(f"responses_4xx__{endpoint}")
        add(f"responses_5xx__{endpoint}")
    add("shed_total")
    add("queue_depth")
    for index in range(len(LATENCY_BUCKETS) + 1):  # +1: the +Inf bucket
        add(f"latency_bucket_{index}")
    add("latency_sum_us")
    add("latency_count")
    add("swaps_total")
    add("swap_seconds_sum_us")
    add("quarantined_total")
    add("canary_rejections_total")
    add("integrity_fallbacks_total")
    add("replica_crash_loops")
    for site in KNOWN_SITES:
        add(f"fault_fires__{site}")
    add("fault_fires__other")
    for site in SERVING_SPAN_SITES:
        for index in range(len(SPAN_BUCKETS) + 1):  # +1: the +Inf bucket
            add(f"span_bucket__{site}__{index}")
        add(f"span_sum_us__{site}")
        add(f"span_count__{site}")
    add("version")
    add("up")
    add("pid")
    add("heartbeat_us")
    return columns


_COLUMNS = _build_columns()
NUM_COLUMNS = len(_COLUMNS)


class SlotMetrics:
    """Writer handle for one process's row of a :class:`MetricsBoard`."""

    def __init__(self, board: "MetricsBoard", slot: int) -> None:
        if not 0 <= slot < board.slots:
            raise ServingError(f"metrics slot {slot} out of range (board has {board.slots})")
        self.board = board
        self.slot = int(slot)
        self._row = board.grid[slot]

    def _inc(self, column: str, amount: int = 1) -> None:
        self._row[_COLUMNS[column]] += amount

    def _set(self, column: str, value: int) -> None:
        self._row[_COLUMNS[column]] = value

    # ------------------------------------------------------------------ #
    def mark_up(self, *, pid: int, version: int = 0) -> None:
        """Declare this slot live (on process start / after respawn)."""
        self._set("pid", pid)
        self._set("version", version)
        self._set("up", 1)
        self.heartbeat()

    def mark_down(self) -> None:
        """Declare this slot dead (graceful shutdown)."""
        self._set("up", 0)

    def heartbeat(self) -> None:
        """Stamp the wall clock so stale rows are detectable."""
        self._set("heartbeat_us", time.time_ns() // 1000)

    def set_version(self, version: int) -> None:
        """Record the session version this process currently serves."""
        self._set("version", int(version))

    def observe_request(self, endpoint: str) -> None:
        """Count one arriving request on ``endpoint``."""
        key = endpoint if endpoint in ENDPOINTS else "other"
        self._inc(f"requests__{key}")

    def observe_response(
        self, endpoint: str, status: int, seconds: float | None = None
    ) -> None:
        """Count one response; predict latencies also feed the histogram."""
        key = endpoint if endpoint in ENDPOINTS else "other"
        klass = "2xx" if status < 400 else ("4xx" if status < 500 else "5xx")
        self._inc(f"responses_{klass}__{key}")
        if status == 429:
            self._inc("shed_total")
        if seconds is not None and key == "predict":
            bucket = int(np.searchsorted(LATENCY_BUCKETS, seconds, side="left"))
            self._inc(f"latency_bucket_{bucket}")
            self._inc("latency_sum_us", int(seconds * 1e6))
            self._inc("latency_count")

    def queue_enter(self) -> None:
        self._inc("queue_depth")

    def queue_leave(self) -> None:
        self._inc("queue_depth", -1)

    def observe_swap(self, seconds: float) -> None:
        """Count one completed session swap."""
        self._inc("swaps_total")
        self._inc("swap_seconds_sum_us", int(seconds * 1e6))

    def observe_quarantine(self, count: int = 1) -> None:
        """Count deltas quarantined to the dead-letter sidecar."""
        self._inc("quarantined_total", int(count))

    def observe_canary_rejection(self) -> None:
        """Count candidate sessions the canary gate rolled back."""
        self._inc("canary_rejections_total")

    def observe_integrity_fallback(self) -> None:
        """Count loads that fell back to last-good after failed verification."""
        self._inc("integrity_fallbacks_total")

    def set_crash_looping(self, count: int) -> None:
        """Gauge: worker slots currently held in crash-loop backoff."""
        self._set("replica_crash_loops", int(count))

    def observe_span(self, name: str, seconds: float) -> None:
        """Feed one finished span into its per-site duration histogram.

        Only the fixed :data:`repro.obs.spans.SERVING_SPAN_SITES` have
        columns (the board layout is baked at create time); spans with any
        other name are ignored, so this is safe as a blanket
        ``Tracer.on_finish`` hook.
        """
        if name not in SERVING_SPAN_SITES:
            return
        bucket = int(np.searchsorted(SPAN_BUCKETS, seconds, side="left"))
        self._inc(f"span_bucket__{name}__{bucket}")
        self._inc(f"span_sum_us__{name}", int(seconds * 1e6))
        self._inc(f"span_count__{name}")

    def observe_fault(self, site: str) -> None:
        """Count one injected-fault fire at ``site``.

        This is the :attr:`repro.utils.faults.FaultInjector.sink` target:
        injector counters are per-process, so without this hop a fault fired
        inside a worker is invisible to the coordinator's ``/metrics`` page.
        """
        column = f"fault_fires__{site}"
        self._inc(column if column in _COLUMNS else "fault_fires__other")


class MetricsBoard:
    """The shared ``(slots, columns)`` int64 counter grid.

    Use :meth:`create` in the process that owns the file (the coordinator),
    :meth:`attach` in every other process, and :meth:`in_memory` for the
    single-process server, which needs the same counters without a file.
    """

    def __init__(self, grid: np.ndarray, path: Path | None) -> None:
        self.grid = grid
        self.path = path
        self.slots = int(grid.shape[0])

    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, path: str | Path, *, slots: int) -> "MetricsBoard":
        """Create (or reset) the board file for ``slots`` processes."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "layout": BOARD_LAYOUT_VERSION,
            "slots": int(slots),
            "columns": NUM_COLUMNS,
        }
        grid = np.memmap(path, dtype=np.int64, mode="w+", shape=(slots, NUM_COLUMNS))
        grid[:] = 0
        grid.flush()
        Path(f"{path}.json").write_text(json.dumps(meta, sort_keys=True))
        return cls(grid, path)

    @classmethod
    def attach(cls, path: str | Path) -> "MetricsBoard":
        """Map an existing board created by another process."""
        path = Path(path)
        meta_path = Path(f"{path}.json")
        if not path.exists() or not meta_path.exists():
            raise ServingError(f"no metrics board at {path}")
        meta = json.loads(meta_path.read_text())
        if int(meta.get("layout", -1)) != BOARD_LAYOUT_VERSION:
            raise ServingError(
                f"metrics board {path} has layout {meta.get('layout')}; "
                f"this library speaks {BOARD_LAYOUT_VERSION}"
            )
        if int(meta.get("columns", -1)) != NUM_COLUMNS:
            raise ServingError(f"metrics board {path} column count mismatch")
        shape = (int(meta["slots"]), NUM_COLUMNS)
        grid = np.memmap(path, dtype=np.int64, mode="r+", shape=shape)
        return cls(grid, path)

    @classmethod
    def in_memory(cls, *, slots: int = 1) -> "MetricsBoard":
        """A private (single-process) board with the identical API."""
        return cls(np.zeros((slots, NUM_COLUMNS), dtype=np.int64), None)

    # ------------------------------------------------------------------ #
    def slot(self, index: int) -> SlotMetrics:
        """The writer handle for row ``index``."""
        return SlotMetrics(self, index)

    def snapshot(self) -> np.ndarray:
        """A point-in-time copy of the whole grid."""
        return np.asarray(self.grid).copy()

    def column(self, name: str, grid: np.ndarray | None = None) -> np.ndarray:
        """All slots' values of one named counter."""
        grid = self.grid if grid is None else grid
        return grid[:, _COLUMNS[name]]


def render_prometheus(board: MetricsBoard) -> str:
    """Render the aggregate board as a Prometheus text-format page.

    Counters are summed across slots; per-process gauges (``up``,
    ``version``) are emitted per slot with a ``slot`` label so a scrape
    shows which replicas are alive and whether any replica lags a version
    behind (it never should after a swap ack).
    """
    grid = board.snapshot()
    lines: list[str] = []

    def total(name: str) -> int:
        return int(board.column(name, grid).sum())

    lines.append("# HELP repro_requests_total Requests received, by endpoint.")
    lines.append("# TYPE repro_requests_total counter")
    for endpoint in ENDPOINTS:
        lines.append(
            f'repro_requests_total{{endpoint="{endpoint}"}} '
            f'{total(f"requests__{endpoint}")}'
        )
    lines.append("# HELP repro_responses_total Responses sent, by endpoint and status class.")
    lines.append("# TYPE repro_responses_total counter")
    for endpoint in ENDPOINTS:
        for klass in ("2xx", "4xx", "5xx"):
            lines.append(
                f'repro_responses_total{{endpoint="{endpoint}",code="{klass}"}} '
                f'{total(f"responses_{klass}__{endpoint}")}'
            )
    lines.append("# HELP repro_shed_total Requests rejected with 429 by admission control.")
    lines.append("# TYPE repro_shed_total counter")
    lines.append(f"repro_shed_total {total('shed_total')}")
    lines.append("# HELP repro_queue_depth In-flight admitted predict requests.")
    lines.append("# TYPE repro_queue_depth gauge")
    lines.append(f"repro_queue_depth {total('queue_depth')}")
    lines.append("# HELP repro_predict_latency_seconds Predict request latency.")
    lines.append("# TYPE repro_predict_latency_seconds histogram")
    cumulative = 0
    for index, bound in enumerate(LATENCY_BUCKETS):
        cumulative += total(f"latency_bucket_{index}")
        lines.append(
            f'repro_predict_latency_seconds_bucket{{le="{bound:g}"}} {cumulative}'
        )
    cumulative += total(f"latency_bucket_{len(LATENCY_BUCKETS)}")
    lines.append(f'repro_predict_latency_seconds_bucket{{le="+Inf"}} {cumulative}')
    lines.append(
        f"repro_predict_latency_seconds_sum {total('latency_sum_us') / 1e6:.6f}"
    )
    lines.append(f"repro_predict_latency_seconds_count {total('latency_count')}")
    lines.append("# HELP repro_swaps_total Completed session swaps.")
    lines.append("# TYPE repro_swaps_total counter")
    lines.append(f"repro_swaps_total {total('swaps_total')}")
    lines.append("# HELP repro_swap_seconds_sum Wall-clock spent swapping sessions.")
    lines.append("# TYPE repro_swap_seconds_sum counter")
    lines.append(f"repro_swap_seconds_sum {total('swap_seconds_sum_us') / 1e6:.6f}")
    lines.append("# HELP repro_quarantined_deltas_total Deltas quarantined to the dead-letter sidecar.")
    lines.append("# TYPE repro_quarantined_deltas_total counter")
    lines.append(f"repro_quarantined_deltas_total {total('quarantined_total')}")
    lines.append("# HELP repro_canary_rejections_total Candidate sessions rejected by the canary gate.")
    lines.append("# TYPE repro_canary_rejections_total counter")
    lines.append(f"repro_canary_rejections_total {total('canary_rejections_total')}")
    lines.append("# HELP repro_integrity_fallbacks_total Session loads that fell back to last-good after failed manifest verification.")
    lines.append("# TYPE repro_integrity_fallbacks_total counter")
    lines.append(f"repro_integrity_fallbacks_total {total('integrity_fallbacks_total')}")
    lines.append("# HELP repro_replica_crash_loops Worker slots currently held in crash-loop backoff.")
    lines.append("# TYPE repro_replica_crash_loops gauge")
    lines.append(f"repro_replica_crash_loops {total('replica_crash_loops')}")
    lines.append("# HELP repro_fault_fires_total Injected-fault fires observed, by site (all processes).")
    lines.append("# TYPE repro_fault_fires_total counter")
    for site in (*KNOWN_SITES, "other"):
        fired = total(f"fault_fires__{site}")
        if fired:
            lines.append(f'repro_fault_fires_total{{site="{site}"}} {fired}')
    span_header_emitted = False
    for site in SERVING_SPAN_SITES:
        if not total(f"span_count__{site}"):
            continue  # keep untraced scrapes terse (and byte-stable)
        if not span_header_emitted:
            lines.append(
                "# HELP repro_span_seconds Duration of traced serving spans, by span name (all processes)."
            )
            lines.append("# TYPE repro_span_seconds histogram")
            span_header_emitted = True
        cumulative = 0
        for index, bound in enumerate(SPAN_BUCKETS):
            cumulative += total(f"span_bucket__{site}__{index}")
            lines.append(
                f'repro_span_seconds_bucket{{span="{site}",le="{bound:g}"}} {cumulative}'
            )
        cumulative += total(f"span_bucket__{site}__{len(SPAN_BUCKETS)}")
        lines.append(f'repro_span_seconds_bucket{{span="{site}",le="+Inf"}} {cumulative}')
        lines.append(
            f'repro_span_seconds_sum{{span="{site}"}} '
            f"{total(f'span_sum_us__{site}') / 1e6:.6f}"
        )
        lines.append(
            f'repro_span_seconds_count{{span="{site}"}} {total(f"span_count__{site}")}'
        )
    lines.append(
        "# HELP repro_build_info Build provenance of the serving binary (value is always 1)."
    )
    lines.append("# TYPE repro_build_info gauge")
    lines.append(f'repro_build_info{{revision="{git_revision()}"}} 1')
    lines.append("# HELP repro_replica_up Whether each replica slot is live.")
    lines.append("# TYPE repro_replica_up gauge")
    up = board.column("up", grid)
    versions = board.column("version", grid)
    for slot in range(board.slots):
        role = "coordinator" if slot == 0 else "worker"
        lines.append(
            f'repro_replica_up{{slot="{slot}",role="{role}"}} {int(up[slot])}'
        )
    lines.append("# HELP repro_replica_version Session version each live replica serves.")
    lines.append("# TYPE repro_replica_version gauge")
    for slot in range(board.slots):
        if up[slot]:
            role = "coordinator" if slot == 0 else "worker"
            lines.append(
                f'repro_replica_version{{slot="{slot}",role="{role}"}} '
                f"{int(versions[slot])}"
            )
    return "\n".join(lines) + "\n"
