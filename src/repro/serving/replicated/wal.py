"""Durable write-ahead log of :class:`~repro.streaming.delta.GraphDelta` s.

The WAL is the serving tier's source of truth for *what happened to the
graph*: every delta is committed here — flushed and ``fsync`` ed — before
its effects are acknowledged to any client, so a crash at any instant loses
nothing that was acked.  Because condensation and training are
deterministic (the property the incremental/serving layers already gate on
byte-identity), replaying the log from the recorded starting point
reconstructs the coordinator's exact model state, bit for bit.

Record framing
--------------
Each record is a CRC-framed JSON object::

    <4-byte LE payload length> <4-byte LE crc32(payload)> <payload UTF-8 JSON>

Four record kinds appear in a log:

``genesis``
    First record of every log: the deterministic recipe for the *base*
    state (dataset, scale, seed, ratio, model hyper-parameters).  Replay
    without a snapshot starts here.
``delta``
    One committed :meth:`GraphDelta.to_payload` in arrival order.
``snapshot``
    A checkpoint: paths (relative to the log) of a saved live-graph archive
    and a :class:`~repro.serving.artifacts.ModelBundle`, written *before*
    the record is appended.  Records may carry SHA-256 digests of both
    files; replay resumes from the newest snapshot whose files still exist
    *and verify*, and only re-applies the deltas logged after it.
``poison``
    A quarantine marker: the ``delta`` record at ``target_offset`` crashed
    its commit and must be skipped on replay.  The full payload and the
    exception fingerprint live in the dead-letter sidecar
    (``wal.path + ".deadletter"``, JSONL); the WAL itself only records the
    skip so that replay-on-boot converges deterministically instead of
    crash-looping on the same record forever.

Torn-write recovery
-------------------
``fsync`` makes completed appends durable, but the append itself can still
be interrupted (kill -9, power loss) leaving a partial frame at the end of
the file.  :func:`read_wal` detects exactly that case — the file ends
before the framed payload completes, or the final complete frame fails its
CRC — and, in repair mode, truncates the log back to the last good record.
A bad frame *followed by more data* is not a tear; it is corruption, and
raises :class:`~repro.errors.WALError` rather than silently dropping
acknowledged history.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WALError
from repro.serving.integrity import file_digest
from repro.streaming.delta import GraphDelta
from repro.utils import faults

__all__ = [
    "WALRecord",
    "DeltaWAL",
    "read_wal",
    "plan_replay",
    "plan_replay_records",
    "deadletter_path",
    "read_deadletter",
]

_HEADER = struct.Struct("<II")
#: sanity bound on one record; a length field beyond this is corruption
_MAX_RECORD_BYTES = 256 * 1024 * 1024

KIND_GENESIS = "genesis"
KIND_DELTA = "delta"
KIND_SNAPSHOT = "snapshot"
KIND_POISON = "poison"


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record plus its byte offset in the file."""

    kind: str
    payload: dict
    offset: int

    def delta(self) -> GraphDelta:
        """The delta carried by a ``delta`` record."""
        if self.kind != KIND_DELTA:
            raise WALError(f"record at offset {self.offset} is {self.kind!r}, not a delta")
        return GraphDelta.from_payload(self.payload["delta"])


def _encode(payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


class DeltaWAL:
    """Append-only, fsync-on-commit GraphDelta log.

    Use :meth:`DeltaWAL.open` to (re)open an existing log on boot — it
    repairs a torn trailing record and returns the surviving records — and
    the ``append_*`` methods to commit new ones.  Every append is flushed
    and ``os.fsync`` ed before returning (disable via ``fsync=False`` for
    tests/benchmarks that measure everything but the disk).
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        self._file = open(self.path, "ab")
        if not existed:
            self._sync_parent()
        self.appended = 0

    @classmethod
    def open(cls, path: str | Path, *, fsync: bool = True) -> tuple["DeltaWAL", list[WALRecord]]:
        """Open ``path`` for appending, repairing a torn tail first.

        Returns the writer positioned at the end of the last good record
        together with every surviving record in order.
        """
        path = Path(path)
        records: list[WALRecord] = []
        if path.exists():
            records = read_wal(path, repair=True)
        wal = cls(path, fsync=fsync)
        return wal, records

    # ------------------------------------------------------------------ #
    def append(self, payload: dict) -> int:
        """Commit one record; returns its byte offset once durable."""
        kind = payload.get("kind")
        if kind not in (KIND_GENESIS, KIND_DELTA, KIND_SNAPSHOT, KIND_POISON):
            raise WALError(f"refusing to append record of unknown kind {kind!r}")
        offset = self._file.tell()
        encoded = _encode(payload)
        action = faults.fire("wal.torn_tail")
        if action is not None:
            # Simulate a crash mid-write: a durable *prefix* of the frame —
            # the exact torn tail read_wal(repair=True) must truncate away.
            keep = int(action.get("keep_bytes", len(encoded) // 2))
            keep = max(1, min(keep, len(encoded) - 1))
            self._file.write(encoded[:keep])
            self._file.flush()
            os.fsync(self._file.fileno())
            raise faults.InjectedFault(
                f"wal.torn_tail: wrote {keep}/{len(encoded)} bytes at offset {offset}"
            )
        self._file.write(encoded)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.appended += 1
        return offset

    def append_genesis(self, config: dict) -> int:
        """Record the deterministic recipe of the base state (first record)."""
        return self.append({"kind": KIND_GENESIS, "config": dict(config)})

    def append_delta(self, delta: GraphDelta) -> int:
        """Commit ``delta`` (the ``to_payload`` JSON wire format)."""
        return self.append({"kind": KIND_DELTA, "delta": delta.to_payload()})

    def append_snapshot(
        self,
        *,
        step: int,
        version: int,
        graph_path: str,
        bundle_path: str,
        deltas_applied: int,
        graph_sha256: str | None = None,
        bundle_sha256: str | None = None,
    ) -> int:
        """Record a checkpoint whose files were already written durably.

        When digests are given, replay verifies the snapshot files against
        them and falls back to an older snapshot (or genesis) on mismatch —
        a half-written checkpoint must not poison recovery.
        """
        payload = {
            "kind": KIND_SNAPSHOT,
            "step": int(step),
            "version": int(version),
            "graph_path": str(graph_path),
            "bundle_path": str(bundle_path),
            "deltas_applied": int(deltas_applied),
        }
        if graph_sha256 is not None:
            payload["graph_sha256"] = str(graph_sha256)
        if bundle_sha256 is not None:
            payload["bundle_sha256"] = str(bundle_sha256)
        return self.append(payload)

    def append_poison(
        self, *, target_offset: int, reason: str, fingerprint: str
    ) -> int:
        """Mark the delta record at ``target_offset`` as quarantined."""
        return self.append(
            {
                "kind": KIND_POISON,
                "target_offset": int(target_offset),
                "reason": str(reason),
                "fingerprint": str(fingerprint),
            }
        )

    def quarantine(
        self, record: WALRecord, error: BaseException, *, reason: str = "exception"
    ) -> dict:
        """Dead-letter ``record`` and mark it poisoned, in that order.

        The sidecar entry (payload + exception fingerprint) is written and
        fsynced *before* the ``poison`` record commits: if we crash between
        the two, the worst case is a duplicate dead-letter line on the next
        boot, never a silently skipped record with no forensic trail.
        Returns the JSON-safe sidecar entry.
        """
        entry = {
            "offset": int(record.offset),
            "reason": str(reason),
            "error": f"{type(error).__name__}: {error}",
            "fingerprint": exception_fingerprint(error),
            "payload": record.payload,
        }
        sidecar = deadletter_path(self.path)
        with open(sidecar, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self.append_poison(
            target_offset=record.offset,
            reason=reason,
            fingerprint=entry["fingerprint"],
        )
        return entry

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._file.closed:
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._file.close()

    def _sync_parent(self) -> None:
        # Make the new directory entry itself durable, not just the bytes.
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def __enter__(self) -> "DeltaWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeltaWAL(path={str(self.path)!r}, appended={self.appended})"


def read_wal(path: str | Path, *, repair: bool = False) -> list[WALRecord]:
    """Decode every record of the log at ``path``.

    A *torn tail* — the file ends inside a frame, or the final frame fails
    its CRC — is truncated away when ``repair=True`` and raises
    :class:`~repro.errors.WALError` otherwise.  A bad frame followed by
    more data always raises: that is body corruption, and dropping
    acknowledged records silently is the one thing a WAL must never do.
    """
    path = Path(path)
    raw = path.read_bytes()
    records: list[WALRecord] = []
    offset = 0
    torn_at: int | None = None
    torn_reason = ""
    while offset < len(raw):
        header = raw[offset : offset + _HEADER.size]
        if len(header) < _HEADER.size:
            torn_at, torn_reason = offset, "incomplete frame header"
            break
        length, crc = _HEADER.unpack(header)
        if length > _MAX_RECORD_BYTES:
            raise WALError(
                f"{path}: frame at offset {offset} declares {length} bytes "
                f"(> {_MAX_RECORD_BYTES}); the log is corrupt"
            )
        body = raw[offset + _HEADER.size : offset + _HEADER.size + length]
        end = offset + _HEADER.size + length
        if len(body) < length:
            torn_at, torn_reason = offset, "frame shorter than declared length"
            break
        if zlib.crc32(body) != crc:
            if end >= len(raw):
                torn_at, torn_reason = offset, "CRC mismatch on final record"
                break
            raise WALError(
                f"{path}: CRC mismatch at offset {offset} with "
                f"{len(raw) - end} bytes following — log body is corrupt"
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if end >= len(raw):
                torn_at, torn_reason = offset, f"undecodable final record ({exc})"
                break
            raise WALError(f"{path}: undecodable record at offset {offset}: {exc}") from exc
        if not isinstance(payload, dict) or "kind" not in payload:
            raise WALError(f"{path}: record at offset {offset} has no kind")
        records.append(WALRecord(str(payload["kind"]), payload, offset))
        offset = end
    if torn_at is not None:
        if not repair:
            raise WALError(
                f"{path}: torn record at offset {torn_at} ({torn_reason}); "
                "open with repair=True to truncate it"
            )
        with open(path, "r+b") as handle:
            handle.truncate(torn_at)
            handle.flush()
            os.fsync(handle.fileno())
    return records


def exception_fingerprint(error: BaseException) -> str:
    """Short stable hash identifying an exception type + message."""
    digest = hashlib.sha256(
        f"{type(error).__name__}:{error}".encode("utf-8", "replace")
    )
    return digest.hexdigest()[:16]


def deadletter_path(wal_path: str | Path) -> Path:
    """The dead-letter sidecar next to a WAL: ``wal.path + ".deadletter"``."""
    wal_path = Path(wal_path)
    return wal_path.with_name(wal_path.name + ".deadletter")


def read_deadletter(wal_path: str | Path) -> list[dict]:
    """Decode the dead-letter sidecar's JSONL entries (``[]`` when absent)."""
    sidecar = deadletter_path(wal_path)
    if not sidecar.exists():
        return []
    entries: list[dict] = []
    for line in sidecar.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def _snapshot_verifies(record: WALRecord, root: Path) -> bool:
    graph_path = root / str(record.payload["graph_path"])
    bundle_path = root / str(record.payload["bundle_path"])
    if not (graph_path.exists() and bundle_path.exists()):
        return False
    for path, key in ((graph_path, "graph_sha256"), (bundle_path, "bundle_sha256")):
        expected = record.payload.get(key)
        if expected is not None and file_digest(path) != expected:
            return False
    return True


def plan_replay_records(
    records: list[WALRecord], *, root: str | Path
) -> tuple[dict | None, WALRecord | None, list[WALRecord], frozenset]:
    """Full replay plan: ``(genesis, snapshot, delta records, poisoned offsets)``.

    The snapshot is the newest one whose referenced files (paths relative
    to ``root``, the WAL's directory) still exist and match their recorded
    digests.  The delta records are exactly the ones logged after it (after
    genesis when no snapshot is usable), in commit order, minus every record
    named by a ``poison`` marker — quarantined deltas are skipped
    deterministically no matter when their marker was appended.
    """
    root = Path(root)
    genesis: dict | None = None
    for record in records:
        if record.kind == KIND_GENESIS:
            genesis = dict(record.payload.get("config", {}))
            break
    poisoned = frozenset(
        int(record.payload["target_offset"])
        for record in records
        if record.kind == KIND_POISON
    )
    snapshot: WALRecord | None = None
    for record in reversed(records):
        if record.kind == KIND_SNAPSHOT and _snapshot_verifies(record, root):
            snapshot = record
            break
    deltas: list[WALRecord] = []
    start = snapshot.offset if snapshot is not None else -1
    for record in records:
        if (
            record.kind == KIND_DELTA
            and record.offset > start
            and record.offset not in poisoned
        ):
            deltas.append(record)
    return genesis, snapshot, deltas, poisoned


def plan_replay(
    records: list[WALRecord], *, root: str | Path
) -> tuple[dict | None, WALRecord | None, list[GraphDelta]]:
    """Split a decoded log into ``(genesis config, snapshot, deltas to apply)``.

    Compatibility wrapper over :func:`plan_replay_records` returning decoded
    :class:`GraphDelta` s instead of raw records.
    """
    genesis, snapshot, delta_records, _ = plan_replay_records(records, root=root)
    return genesis, snapshot, [record.delta() for record in delta_records]
