"""Durable write-ahead log of :class:`~repro.streaming.delta.GraphDelta` s.

The WAL is the serving tier's source of truth for *what happened to the
graph*: every delta is committed here — flushed and ``fsync`` ed — before
its effects are acknowledged to any client, so a crash at any instant loses
nothing that was acked.  Because condensation and training are
deterministic (the property the incremental/serving layers already gate on
byte-identity), replaying the log from the recorded starting point
reconstructs the coordinator's exact model state, bit for bit.

Record framing
--------------
Each record is a CRC-framed JSON object::

    <4-byte LE payload length> <4-byte LE crc32(payload)> <payload UTF-8 JSON>

Three record kinds appear in a log:

``genesis``
    First record of every log: the deterministic recipe for the *base*
    state (dataset, scale, seed, ratio, model hyper-parameters).  Replay
    without a snapshot starts here.
``delta``
    One committed :meth:`GraphDelta.to_payload` in arrival order.
``snapshot``
    A checkpoint: paths (relative to the log) of a saved live-graph archive
    and a :class:`~repro.serving.artifacts.ModelBundle`, written *before*
    the record is appended.  Replay resumes from the newest snapshot whose
    files still exist and only re-applies the deltas logged after it.

Torn-write recovery
-------------------
``fsync`` makes completed appends durable, but the append itself can still
be interrupted (kill -9, power loss) leaving a partial frame at the end of
the file.  :func:`read_wal` detects exactly that case — the file ends
before the framed payload completes, or the final complete frame fails its
CRC — and, in repair mode, truncates the log back to the last good record.
A bad frame *followed by more data* is not a tear; it is corruption, and
raises :class:`~repro.errors.WALError` rather than silently dropping
acknowledged history.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WALError
from repro.streaming.delta import GraphDelta
from repro.utils import faults

__all__ = ["WALRecord", "DeltaWAL", "read_wal", "plan_replay"]

_HEADER = struct.Struct("<II")
#: sanity bound on one record; a length field beyond this is corruption
_MAX_RECORD_BYTES = 256 * 1024 * 1024

KIND_GENESIS = "genesis"
KIND_DELTA = "delta"
KIND_SNAPSHOT = "snapshot"


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record plus its byte offset in the file."""

    kind: str
    payload: dict
    offset: int

    def delta(self) -> GraphDelta:
        """The delta carried by a ``delta`` record."""
        if self.kind != KIND_DELTA:
            raise WALError(f"record at offset {self.offset} is {self.kind!r}, not a delta")
        return GraphDelta.from_payload(self.payload["delta"])


def _encode(payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


class DeltaWAL:
    """Append-only, fsync-on-commit GraphDelta log.

    Use :meth:`DeltaWAL.open` to (re)open an existing log on boot — it
    repairs a torn trailing record and returns the surviving records — and
    the ``append_*`` methods to commit new ones.  Every append is flushed
    and ``os.fsync`` ed before returning (disable via ``fsync=False`` for
    tests/benchmarks that measure everything but the disk).
    """

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        self._file = open(self.path, "ab")
        if not existed:
            self._sync_parent()
        self.appended = 0

    @classmethod
    def open(cls, path: str | Path, *, fsync: bool = True) -> tuple["DeltaWAL", list[WALRecord]]:
        """Open ``path`` for appending, repairing a torn tail first.

        Returns the writer positioned at the end of the last good record
        together with every surviving record in order.
        """
        path = Path(path)
        records: list[WALRecord] = []
        if path.exists():
            records = read_wal(path, repair=True)
        wal = cls(path, fsync=fsync)
        return wal, records

    # ------------------------------------------------------------------ #
    def append(self, payload: dict) -> int:
        """Commit one record; returns its byte offset once durable."""
        kind = payload.get("kind")
        if kind not in (KIND_GENESIS, KIND_DELTA, KIND_SNAPSHOT):
            raise WALError(f"refusing to append record of unknown kind {kind!r}")
        offset = self._file.tell()
        encoded = _encode(payload)
        action = faults.fire("wal.torn_tail")
        if action is not None:
            # Simulate a crash mid-write: a durable *prefix* of the frame —
            # the exact torn tail read_wal(repair=True) must truncate away.
            keep = int(action.get("keep_bytes", len(encoded) // 2))
            keep = max(1, min(keep, len(encoded) - 1))
            self._file.write(encoded[:keep])
            self._file.flush()
            os.fsync(self._file.fileno())
            raise faults.InjectedFault(
                f"wal.torn_tail: wrote {keep}/{len(encoded)} bytes at offset {offset}"
            )
        self._file.write(encoded)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.appended += 1
        return offset

    def append_genesis(self, config: dict) -> int:
        """Record the deterministic recipe of the base state (first record)."""
        return self.append({"kind": KIND_GENESIS, "config": dict(config)})

    def append_delta(self, delta: GraphDelta) -> int:
        """Commit ``delta`` (the ``to_payload`` JSON wire format)."""
        return self.append({"kind": KIND_DELTA, "delta": delta.to_payload()})

    def append_snapshot(
        self,
        *,
        step: int,
        version: int,
        graph_path: str,
        bundle_path: str,
        deltas_applied: int,
    ) -> int:
        """Record a checkpoint whose files were already written durably."""
        return self.append(
            {
                "kind": KIND_SNAPSHOT,
                "step": int(step),
                "version": int(version),
                "graph_path": str(graph_path),
                "bundle_path": str(bundle_path),
                "deltas_applied": int(deltas_applied),
            }
        )

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._file.closed:
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._file.close()

    def _sync_parent(self) -> None:
        # Make the new directory entry itself durable, not just the bytes.
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def __enter__(self) -> "DeltaWAL":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeltaWAL(path={str(self.path)!r}, appended={self.appended})"


def read_wal(path: str | Path, *, repair: bool = False) -> list[WALRecord]:
    """Decode every record of the log at ``path``.

    A *torn tail* — the file ends inside a frame, or the final frame fails
    its CRC — is truncated away when ``repair=True`` and raises
    :class:`~repro.errors.WALError` otherwise.  A bad frame followed by
    more data always raises: that is body corruption, and dropping
    acknowledged records silently is the one thing a WAL must never do.
    """
    path = Path(path)
    raw = path.read_bytes()
    records: list[WALRecord] = []
    offset = 0
    torn_at: int | None = None
    torn_reason = ""
    while offset < len(raw):
        header = raw[offset : offset + _HEADER.size]
        if len(header) < _HEADER.size:
            torn_at, torn_reason = offset, "incomplete frame header"
            break
        length, crc = _HEADER.unpack(header)
        if length > _MAX_RECORD_BYTES:
            raise WALError(
                f"{path}: frame at offset {offset} declares {length} bytes "
                f"(> {_MAX_RECORD_BYTES}); the log is corrupt"
            )
        body = raw[offset + _HEADER.size : offset + _HEADER.size + length]
        end = offset + _HEADER.size + length
        if len(body) < length:
            torn_at, torn_reason = offset, "frame shorter than declared length"
            break
        if zlib.crc32(body) != crc:
            if end >= len(raw):
                torn_at, torn_reason = offset, "CRC mismatch on final record"
                break
            raise WALError(
                f"{path}: CRC mismatch at offset {offset} with "
                f"{len(raw) - end} bytes following — log body is corrupt"
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if end >= len(raw):
                torn_at, torn_reason = offset, f"undecodable final record ({exc})"
                break
            raise WALError(f"{path}: undecodable record at offset {offset}: {exc}") from exc
        if not isinstance(payload, dict) or "kind" not in payload:
            raise WALError(f"{path}: record at offset {offset} has no kind")
        records.append(WALRecord(str(payload["kind"]), payload, offset))
        offset = end
    if torn_at is not None:
        if not repair:
            raise WALError(
                f"{path}: torn record at offset {torn_at} ({torn_reason}); "
                "open with repair=True to truncate it"
            )
        with open(path, "r+b") as handle:
            handle.truncate(torn_at)
            handle.flush()
            os.fsync(handle.fileno())
    return records


def plan_replay(
    records: list[WALRecord], *, root: str | Path
) -> tuple[dict | None, WALRecord | None, list[GraphDelta]]:
    """Split a decoded log into ``(genesis config, snapshot, deltas to apply)``.

    The snapshot is the newest one whose referenced files (paths relative
    to ``root``, the WAL's directory) still exist; the returned deltas are
    exactly the ones logged after it (after genesis when no snapshot is
    usable), in commit order.
    """
    root = Path(root)
    genesis: dict | None = None
    for record in records:
        if record.kind == KIND_GENESIS:
            genesis = dict(record.payload.get("config", {}))
            break
    snapshot: WALRecord | None = None
    for record in reversed(records):
        if record.kind != KIND_SNAPSHOT:
            continue
        graph_path = root / str(record.payload["graph_path"])
        bundle_path = root / str(record.payload["bundle_path"])
        if graph_path.exists() and bundle_path.exists():
            snapshot = record
            break
    deltas: list[GraphDelta] = []
    start = snapshot.offset if snapshot is not None else -1
    for record in records:
        if record.kind == KIND_DELTA and record.offset > start:
            deltas.append(record.delta())
    return genesis, snapshot, deltas
