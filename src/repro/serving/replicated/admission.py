"""Bounded admission with load shedding for the serving endpoints.

An overloaded replica has two choices: queue without bound (latency grows
until every client times out and *all* work done was wasted) or shed early
(a fixed fraction of clients get an immediate, honest 429 while the rest
keep their latency SLO).  :class:`AdmissionGate` implements the second:
a counter of in-flight admitted requests with a hard capacity; requests
beyond it are rejected before any model work happens.

The gate is deliberately tiny — admission is checked on every request, so
it must cost two integer ops, not a queue allocation.  It is thread-safe
(the asyncio server's swap worker and the event loop may both touch it) and
feeds the shared :class:`~repro.serving.replicated.metrics.MetricsBoard`
queue-depth gauge when one is attached.
"""

from __future__ import annotations

import threading

from repro.serving.replicated.metrics import SlotMetrics

__all__ = ["AdmissionGate"]


class AdmissionGate:
    """Counting gate: at most ``capacity`` requests in flight, rest shed.

    ``capacity <= 0`` disables shedding (every request admits), which keeps
    the single-process default behaviour unchanged.

    Examples
    --------
    >>> gate = AdmissionGate(2)
    >>> gate.try_enter(), gate.try_enter(), gate.try_enter()
    (True, True, False)
    >>> gate.leave(); gate.try_enter()
    True
    >>> gate.stats["shed"]
    1
    """

    def __init__(self, capacity: int, *, metrics: SlotMetrics | None = None) -> None:
        self.capacity = int(capacity)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._in_flight = 0
        self.admitted = 0
        self.shed = 0

    def try_enter(self) -> bool:
        """Admit one request; ``False`` means shed it (respond 429)."""
        with self._lock:
            if self.capacity > 0 and self._in_flight >= self.capacity:
                self.shed += 1
                return False
            self._in_flight += 1
            self.admitted += 1
        if self.metrics is not None:
            self.metrics.queue_enter()
        return True

    def leave(self) -> None:
        """Release one previously admitted request."""
        with self._lock:
            self._in_flight -= 1
            if self._in_flight < 0:  # misuse guard: leave() without enter()
                self._in_flight = 0
                return
        if self.metrics is not None:
            self.metrics.queue_leave()

    @property
    def depth(self) -> int:
        """Requests currently in flight."""
        return self._in_flight

    @property
    def stats(self) -> dict[str, int]:
        """Admission counters for ``/stats``."""
        return {
            "capacity": self.capacity,
            "depth": self._in_flight,
            "admitted": self.admitted,
            "shed": self.shed,
        }
