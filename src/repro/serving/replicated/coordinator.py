"""The replicated tier's single writer: WAL commit, publish, swap fan-out.

One :class:`ReplicatedServer` owns the whole deployment:

* the :class:`~repro.serving.hotswap.ServingController` (graph, condenser,
  model) — every delta is applied exactly once, here;
* the :class:`~repro.serving.replicated.wal.DeltaWAL` — a delta is durable
  *before* its effects are applied or acknowledged;
* the published version directories and the ``CURRENT`` pointer
  (:mod:`~repro.serving.replicated.pool`);
* the unix-socket control channel workers register on, and the
  :class:`~repro.serving.replicated.pool.WorkerPool` supervisor that
  respawns killed workers.

Commit pipeline of one ``POST /delta`` (serialised by an asyncio lock)::

    WAL append (fsync)  →  controller.apply_delta  →  publish version dir
    →  flip CURRENT  →  fan out swap notices  →  await worker acks
    →  (periodic snapshot)  →  answer the client

``CURRENT`` flips *before* the fan-out so a worker respawned at any moment
loads a version at least as new as every acked delta; the acks guarantee no
registered worker answers with a stale version after the client sees the
delta response.

Recovery (:func:`recover_from_wal`) is pure replay: rebuild the base state
from the genesis recipe (or restore the newest usable snapshot's graph +
bundle) and re-apply the logged deltas.  Condensation and training are
deterministic, so the recovered model state is byte-identical to what the
crashed process had — the property ``benchmarks/bench_serving.py
--replicated`` gates on.

Self-healing (this PR's layer over the pipeline):

* a delta whose ``apply_delta`` raises is **quarantined** — dead-lettered
  with its payload and exception fingerprint, marked ``poison`` in the WAL
  so replay skips it forever — and the controller is rebuilt from the WAL,
  so the answered 422 leaves the exact pre-delta state serving;
* a candidate that fails the canary gate
  (:class:`~repro.errors.CanaryRejectedError`) takes the same quarantine +
  rebuild path: rollback is *replay without the record*, which keeps the
  online state byte-identical to what the next boot would recover;
* replay itself runs the same quarantine loop, so a poison record already
  in the log cannot crash-loop recovery — each pass quarantines at most
  one more delta and the loop converges;
* every publish is verified against its manifest before ``CURRENT`` can
  point at it, and repaired (republished once) when the bytes are bad.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro import obs
from repro.errors import (
    CanaryRejectedError,
    IntegrityError,
    PoisonDeltaError,
    ServingError,
    WALError,
)
from repro.hetero.graph import HeteroGraph
from repro.hetero.io import load_graph, save_graph
from repro.obs.propagate import extract_delta, stamp_delta
from repro.serving import integrity
from repro.serving.artifacts import load_bundle, save_bundle
from repro.serving.hotswap import ServingController, SwapReport
from repro.serving.server import (
    DEFAULT_MAX_BODY_BYTES,
    ServingServer,
    _parse_json,
)
from repro.serving.replicated.pool import (
    WorkerPool,
    make_listen_socket,
    publish_version,
    set_current,
)
from repro.serving.replicated.wal import (
    KIND_DELTA,
    KIND_POISON,
    DeltaWAL,
    WALRecord,
    plan_replay_records,
    read_wal,
)
from repro.streaming.delta import GraphDelta
from repro.utils import faults

__all__ = ["ReplicatedConfig", "ReplicatedServer", "recover_from_wal"]


@dataclass(frozen=True)
class ReplicatedConfig:
    """Deployment shape of one replicated serving tier.

    ``root`` holds everything durable (WAL, snapshots, published versions,
    the shared metrics board, the control socket); ``workers`` predictor
    processes join the coordinator on one ``SO_REUSEPORT`` port.
    """

    root: str | Path
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    #: append a snapshot record every N committed deltas (0 disables)
    snapshot_every: int = 0
    #: per-process admission capacity for /predict (0 = no shedding)
    max_pending: int = 0
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    cache_size: int = 4096
    max_batch: int = 256
    batch_window_seconds: float = 0.002
    fsync: bool = True
    #: how long the commit waits for each worker's swap ack
    ack_timeout_seconds: float = 15.0
    wal_filename: str = "wal.log"
    #: JSON-safe fault-plan specs (see ``FaultInjector.from_specs``) shipped
    #: to every worker — injectors are per-process, so chaos plans targeting
    #: worker-side sites must be rebuilt inside each spawned worker
    worker_fault_plans: tuple = ()

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError(f"workers must be >= 1, got {self.workers}")
        if self.snapshot_every < 0:
            raise ServingError(f"snapshot_every must be >= 0, got {self.snapshot_every}")
        if self.max_pending < 0:
            raise ServingError(f"max_pending must be >= 0, got {self.max_pending}")
        if self.max_body_bytes < 1:
            raise ServingError(f"max_body_bytes must be >= 1, got {self.max_body_bytes}")
        if self.ack_timeout_seconds <= 0:
            raise ServingError("ack_timeout_seconds must be > 0")

    @property
    def root_path(self) -> Path:
        return Path(self.root)

    @property
    def wal_path(self) -> Path:
        return self.root_path / self.wal_filename

    @property
    def board_path(self) -> Path:
        return self.root_path / "metrics.board"

    @property
    def control_path(self) -> Path:
        return self.root_path / "control.sock"


def _replay_plan(
    wal: DeltaWAL,
    records: list[WALRecord],
    *,
    root: Path,
    make_controller: Callable[[HeteroGraph | None], ServingController],
    genesis_config: dict | None = None,
) -> tuple[ServingController, dict]:
    """Quarantine-convergent replay of a decoded log.

    Builds the base state (snapshot or genesis) and re-applies the
    non-poisoned deltas.  A delta that *crashes* its replay is quarantined
    — dead-lettered and marked ``poison`` — and the whole replay restarts
    without it.  Each pass removes at least one delta, so the loop
    terminates; a log full of poison converges to the base state instead of
    crash-looping the process.  Returns ``(started controller, report)``.
    """
    records = list(records)
    quarantined_now = 0
    while True:
        genesis, snapshot, delta_records, poisoned = plan_replay_records(
            records, root=root
        )
        if genesis is None:
            raise WALError(f"{wal.path}: log has records but no genesis")
        if genesis_config is not None and dict(genesis_config) != genesis:
            raise WALError(
                f"{wal.path}: genesis config mismatch — the log was started "
                f"with {genesis}, this deployment asks for {dict(genesis_config)}; "
                "replaying these deltas into a different base state would "
                "corrupt the model"
            )
        if snapshot is not None:
            graph = load_graph(root / str(snapshot.payload["graph_path"]))
            bundle = load_bundle(root / str(snapshot.payload["bundle_path"]))
            controller = make_controller(graph)
            controller.start(warm_bundle=bundle)
            controller.adopt_version(int(snapshot.payload["version"]))
            mode = "snapshot"
            snapshot_version = int(snapshot.payload["version"])
        else:
            controller = make_controller(None)
            controller.start()
            mode = "genesis"
            snapshot_version = None
        crashed: tuple[WALRecord, Exception] | None = None
        applied = 0
        for record in delta_records:
            rec_delta = record.delta()
            # The WAL record carries the original commit's trace context in
            # the delta metadata: parent the replay span to it, so a traced
            # recovery renders under the commit that logged the record.
            ctx = extract_delta(rec_delta)
            try:
                with obs.span(
                    "replay.apply_delta",
                    _parent=ctx.parent_id if ctx is not None else None,
                    step=int(rec_delta.step),
                ):
                    controller.apply_delta(rec_delta)
            except Exception as exc:
                crashed = (record, exc)
                break
            applied += 1
        if crashed is None:
            return controller, {
                "mode": mode,
                "deltas_replayed": applied,
                "snapshot_version": snapshot_version,
                "deltas_logged": sum(1 for r in records if r.kind == KIND_DELTA),
                "quarantined": len(poisoned),
                "quarantined_now": quarantined_now,
            }
        record, error = crashed
        wal.quarantine(record, error, reason="replay")
        quarantined_now += 1
        # Reflect the just-appended poison marker without re-reading the
        # file; the next plan_replay_records pass skips the record.
        records.append(
            WALRecord(
                KIND_POISON,
                {"kind": KIND_POISON, "target_offset": record.offset},
                -1,
            )
        )


def recover_from_wal(
    wal_path: str | Path,
    *,
    root: str | Path,
    make_controller: Callable[[HeteroGraph | None], ServingController],
    genesis_config: dict | None = None,
    fsync: bool = True,
) -> tuple[ServingController, DeltaWAL, dict]:
    """Open (repairing a torn tail) and replay the WAL at ``wal_path``.

    ``make_controller(graph)`` builds the deployment's controller: around
    the given live graph when restoring a snapshot, or around the
    deterministic base state when called with ``None``.

    An empty/new log records ``genesis_config`` as its first record; an
    existing log's genesis is checked against it — replaying deltas into a
    *different* base state would silently produce garbage, so a mismatch
    raises :class:`~repro.errors.WALError`.

    Replay is the quarantine-convergent loop of :func:`_replay_plan`: a
    delta that crashes recovery is dead-lettered and poisoned rather than
    crash-looping the boot, and a record poisoned on a *previous* boot is
    skipped without any work (``quarantined_now`` is 0 on the second boot).

    Returns ``(started controller, open WAL, recovery report)``; the report
    says which path ran (``cold`` / ``genesis`` / ``snapshot``), how many
    deltas were re-applied, and how much quarantine work happened
    (``quarantined`` total vs ``quarantined_now`` this boot).
    """
    root = Path(root)
    wal, records = DeltaWAL.open(wal_path, fsync=fsync)
    try:
        if not records:
            wal.append_genesis(dict(genesis_config or {}))
            controller = make_controller(None)
            controller.start()
            return controller, wal, {
                "mode": "cold",
                "deltas_replayed": 0,
                "snapshot_version": None,
                "deltas_logged": 0,
                "quarantined": 0,
                "quarantined_now": 0,
            }
        controller, report = _replay_plan(
            wal,
            records,
            root=root,
            make_controller=make_controller,
            genesis_config=genesis_config,
        )
        return controller, wal, report
    except BaseException:
        wal.close()
        raise


class _CoordinatorHTTP(ServingServer):
    """The coordinator's HTTP endpoint: deltas go through the commit pipeline."""

    def __init__(self, replicated: "ReplicatedServer", controller, **kwargs) -> None:
        super().__init__(controller, **kwargs)
        self.replicated = replicated

    async def _handle_delta(self, body: bytes) -> tuple[int, dict]:
        delta = GraphDelta.from_payload(_parse_json(body))
        try:
            report, acked = await self.replicated.commit_delta(delta)
        except CanaryRejectedError as exc:
            # The candidate was rejected and the record quarantined; the
            # controller was rebuilt, so the previous version is answering.
            return 422, {
                "error": str(exc),
                "rolled_back": True,
                "quarantined": True,
                "canary": dict(exc.report),
                "version": self.replicated.controller.version,
            }
        except PoisonDeltaError as exc:
            entry = dict(exc.entry or {})
            return 422, {
                "error": str(exc),
                "rolled_back": True,
                "quarantined": True,
                "fingerprint": entry.get("fingerprint"),
                "version": self.replicated.controller.version,
            }
        self.metrics.observe_swap(report.swap_seconds)
        self.metrics.set_version(report.version)
        return 200, {
            "step": report.step,
            "mode": report.mode,
            "version": report.version,
            "retrained": report.retrained,
            "dirty_count": report.dirty_count,
            "cache_carried": report.cache_carried,
            "condense_seconds": round(report.condense_seconds, 6),
            "train_seconds": round(report.train_seconds, 6),
            "swap_seconds": round(report.swap_seconds, 6),
            "acked_workers": acked,
        }

    def _stats_payload(self) -> dict:
        payload = super()._stats_payload()
        payload["replicated"] = self.replicated.stats
        return payload


@dataclass
class _WorkerLink:
    """One registered worker's control connection."""

    slot: int
    pid: int
    writer: asyncio.StreamWriter
    acks: asyncio.Queue = field(default_factory=asyncio.Queue)


class ReplicatedServer:
    """Coordinator + durable WAL + supervised mmap-shared worker pool.

    Parameters
    ----------
    make_controller:
        ``(graph | None) -> ServingController`` factory (see
        :func:`recover_from_wal`).  Must be deterministic for ``None``.
    config:
        The :class:`ReplicatedConfig` deployment shape.
    genesis:
        JSON-safe recipe of the base state, recorded as the WAL's first
        record and checked on every recovery.
    """

    def __init__(
        self,
        make_controller: Callable[[HeteroGraph | None], ServingController],
        *,
        config: ReplicatedConfig,
        genesis: dict | None = None,
    ) -> None:
        self.make_controller = make_controller
        self.config = config
        self.genesis = dict(genesis or {})
        self.controller: ServingController | None = None
        self.wal: DeltaWAL | None = None
        self.pool: WorkerPool | None = None
        self.board = None
        self.http: _CoordinatorHTTP | None = None
        self.recovery: dict | None = None
        self.host = config.host
        self.port = int(config.port)
        self.admin_port = 0
        self.deltas_committed = 0
        self.quarantined = 0
        self.canary_rejections = 0
        #: swap acks answered with an older (last-good) version: degraded
        #: workers that verified-and-fell-back rather than going silent
        self.fallback_acks = 0
        #: publishes whose manifest check failed and were rewritten in place
        self.publish_repairs = 0
        self._since_snapshot = 0
        self._delta_lock = asyncio.Lock()
        self._links: dict[int, _WorkerLink] = {}
        self._control_server: asyncio.AbstractServer | None = None
        self._admin_server: asyncio.AbstractServer | None = None
        self._supervisor: asyncio.Task | None = None

    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Recover, publish, and bring the whole tier up; returns (host, port)."""
        from repro.serving.replicated.metrics import MetricsBoard

        cfg = self.config
        root = cfg.root_path
        root.mkdir(parents=True, exist_ok=True)
        self.board = MetricsBoard.create(cfg.board_path, slots=cfg.workers + 1)
        slot0 = self.board.slot(0)
        # Surface this process's fault fires on the shared board so a chaos
        # run's /metrics reports fires per site across the whole deployment.
        injector = faults.active()
        if injector is not None and injector.sink is None:
            injector.sink = slot0.observe_fault

        # reprolint: disable-next=REP-A401 boot path: the loop serves no requests until start() returns
        controller, wal, recovery = recover_from_wal(
            cfg.wal_path,
            root=root,
            make_controller=self.make_controller,
            genesis_config=self.genesis,
            fsync=cfg.fsync,
        )
        self.controller, self.wal, self.recovery = controller, wal, recovery
        self.deltas_committed = int(recovery["deltas_logged"])
        self.quarantined = int(recovery.get("quarantined", 0))
        if recovery.get("quarantined_now"):
            slot0.observe_quarantine(int(recovery["quarantined_now"]))
        self._publish(controller.version)
        set_current(root, controller.version)  # reprolint: disable=REP-A401 boot path: the loop serves no requests until start() returns

        cfg.control_path.unlink(missing_ok=True)
        self._control_server = await asyncio.start_unix_server(
            self._handle_control, path=str(cfg.control_path)
        )

        sock = make_listen_socket(cfg.host, cfg.port)
        self.host, self.port = sock.getsockname()[:2]
        self.http = _CoordinatorHTTP(
            self,
            controller,
            host=self.host,
            port=self.port,
            sock=sock,
            max_batch=cfg.max_batch,
            batch_window_seconds=cfg.batch_window_seconds,
            max_body_bytes=cfg.max_body_bytes,
            admission_capacity=cfg.max_pending,
            metrics=slot0,
        )
        await self.http.start()
        # Loopback admin listener: where workers forward POST /delta to.
        self._admin_server = await asyncio.start_server(
            self.http._handle_connection, "127.0.0.1", 0
        )
        self.admin_port = int(self._admin_server.sockets[0].getsockname()[1])

        self.pool = WorkerPool(
            workers=cfg.workers, options=self._worker_options(), metrics=slot0
        )
        self.pool.start()
        self._supervisor = asyncio.create_task(self.pool.supervise())
        return self.host, self.port

    def _worker_options(self) -> dict:
        cfg = self.config
        return {
            "root": str(cfg.root_path),
            "board": str(cfg.board_path),
            "control": str(cfg.control_path),
            "host": self.host,
            "port": self.port,
            "admin_port": self.admin_port,
            "cache_size": cfg.cache_size,
            "max_batch": cfg.max_batch,
            "batch_window_seconds": cfg.batch_window_seconds,
            "max_body_bytes": cfg.max_body_bytes,
            "max_pending": cfg.max_pending,
            "fault_plans": [dict(spec) for spec in cfg.worker_fault_plans],
        }

    def _publish(self, version: int) -> None:
        """Publish ``version`` and verify it before anyone can load it.

        ``publish_version`` writes the manifest itself; re-verifying here
        catches bytes damaged *during* the publish (torn write, bit flip —
        or the ``publish.*`` fault sites).  One in-place republish repairs
        it; a publish that still fails its own manifest raises rather than
        letting ``CURRENT`` ever point at garbage.
        """
        assert self.controller is not None
        session = self.controller.session

        def write() -> Path:
            return publish_version(
                self.config.root_path,
                version=version,
                bundle=self.controller.export_bundle(),
                logits=session._logits,
            )

        vdir = write()
        try:
            integrity.verify_version_dir(vdir)
        except IntegrityError:
            self.publish_repairs += 1
            if self.http is not None:
                self.http.metrics.observe_integrity_fallback()
            vdir = write()
            integrity.verify_version_dir(vdir)

    # ------------------------------------------------------------------ #
    async def _handle_control(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        link: _WorkerLink | None = None
        try:
            hello = json.loads(await reader.readline())
            if hello.get("type") != "hello":
                return
            link = _WorkerLink(
                slot=int(hello["slot"]), pid=int(hello.get("pid", 0)), writer=writer
            )
            self._links[link.slot] = link
            assert self.controller is not None
            writer.write(
                json.dumps(
                    {"type": "welcome", "version": self.controller.version}
                ).encode("utf-8")
                + b"\n"
            )
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    break
                message = json.loads(line)
                if message.get("type") == "ack":
                    # The full ack dict: workers report both the version they
                    # loaded and the one requested, so an integrity fallback
                    # (loaded < requested) is distinguishable from silence.
                    link.acks.put_nowait(message)
        except (json.JSONDecodeError, ValueError, ConnectionResetError):
            pass
        finally:
            if link is not None and self._links.get(link.slot) is link:
                del self._links[link.slot]
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _fan_out(self, version: int) -> int:
        """Notify every registered worker; returns how many acked in time.

        Workers that die mid-swap drop off the control channel and are not
        waited for (the supervisor respawns them onto ``CURRENT``, which
        already points at ``version``).
        """
        action = faults.fire("coordinator.delay_ack")
        if action is not None:
            # Fault site: a slow swap-ack round trip.  The sleep happens
            # *inside* the commit's ack wait, so it eats into the
            # ack_timeout_seconds deadline exactly like network delay would.
            await asyncio.sleep(float(action.get("seconds", 0.05)))
        notified: list[_WorkerLink] = []
        message = json.dumps({"type": "swap", "version": int(version)}).encode("utf-8") + b"\n"
        for link in list(self._links.values()):
            try:
                link.writer.write(message)
                await link.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                continue
            notified.append(link)
        acked = 0
        deadline = asyncio.get_running_loop().time() + self.config.ack_timeout_seconds
        for link in notified:
            while True:
                if self._links.get(link.slot) is not link:
                    break  # worker died mid-swap; respawn loads CURRENT
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    # Registered but silent past the deadline: the worker is
                    # wedged, not dead — liveness supervision will never
                    # replace it, so do it here instead of stalling every
                    # future commit on the same slot.
                    if self.pool is not None:
                        self.pool.respawn_slot(link.slot)
                    break
                try:
                    ack = await asyncio.wait_for(
                        link.acks.get(), timeout=min(remaining, 0.1)
                    )
                except asyncio.TimeoutError:
                    continue
                if isinstance(ack, dict):
                    ack_version = int(ack.get("version", -1))
                    requested = int(ack.get("requested", ack_version))
                else:  # bare-int acks from older workers / tests
                    ack_version = requested = int(ack)
                if ack_version >= version:
                    acked += 1
                    break
                if requested >= version:
                    # The worker answered, but with last-good: it verified
                    # the published dir, found garbage, and fell back.
                    # Degraded — a respawn would reread the same bad bytes.
                    self.fallback_acks += 1
                    break
        return acked

    async def commit_delta(self, delta: GraphDelta) -> tuple[SwapReport, int]:
        """The single-writer commit pipeline (see module docstring)."""
        assert self.controller is not None and self.wal is not None
        assert self.http is not None
        loop = asyncio.get_running_loop()
        async with self._delta_lock:
            with obs.span("commit.delta", step=int(delta.step)):
                # Stamp the commit span's context onto the delta so the WAL
                # record carries it — replay parents its spans to this commit.
                # No-op (and byte-identical records) while tracing is disabled.
                delta = stamp_delta(delta)

                def commit() -> SwapReport:
                    # Reject before logging: only deltas that can apply to the
                    # live graph may enter the WAL, so replay never trips over a
                    # record whose client was already refused.
                    delta.validate_against(self.controller.graph)
                    # Durable first: an acked delta must survive any crash after
                    # this line; a crash before it means the client saw no ack.
                    with obs.span("commit.wal_append"):
                        offset = self.wal.append_delta(delta)
                    try:
                        report = self.controller.apply_delta(delta)
                    except CanaryRejectedError as exc:
                        # Canary rollback: quarantine the record and rebuild
                        # from the WAL, so the live state is byte-identical to
                        # what the next boot would recover (replay skips the
                        # poisoned record too).
                        self._quarantine(offset, delta, exc, reason="canary")
                        self._rebuild_controller()
                        raise
                    except Exception as exc:
                        entry = self._quarantine(offset, delta, exc, reason="exception")
                        self._rebuild_controller()
                        raise PoisonDeltaError(
                            f"delta step {delta.step} poisoned its commit "
                            f"({type(exc).__name__}: {exc}); quarantined to the "
                            "dead-letter sidecar and rolled back",
                            entry=entry,
                        ) from exc
                    with obs.span("commit.publish", version=int(report.version)):
                        self._publish(report.version)
                    return report

                # copy_context: run_in_executor does not carry contextvars into
                # the swap thread, and the commit spans must stay children of
                # commit.delta.
                call = contextvars.copy_context().run
                report = await loop.run_in_executor(self.http._swap_pool, call, commit)
                # The CURRENT pointer publish fsyncs twice; off the loop so
                # in-flight predictions don't stall behind a slow disk.
                await loop.run_in_executor(
                    self.http._swap_pool,
                    lambda: set_current(self.config.root_path, report.version),
                )
                self.deltas_committed += 1
                self._since_snapshot += 1
                with obs.span("commit.fan_out", version=int(report.version)) as fan_span:
                    acked = await self._fan_out(report.version)
                    if fan_span is not None:
                        fan_span.attrs["acked"] = int(acked)
                if (
                    self.config.snapshot_every
                    and self._since_snapshot >= self.config.snapshot_every
                ):
                    with obs.span("commit.snapshot", version=int(report.version)):
                        await loop.run_in_executor(
                            self.http._swap_pool,
                            contextvars.copy_context().run,
                            lambda: self._write_snapshot(report),
                        )
                    self._since_snapshot = 0
                return report, acked

    def _quarantine(
        self, offset: int, delta: GraphDelta, error: Exception, *, reason: str
    ) -> dict:
        """Dead-letter the delta record at ``offset`` and count it."""
        assert self.wal is not None
        record = WALRecord(
            KIND_DELTA, {"kind": KIND_DELTA, "delta": delta.to_payload()}, offset
        )
        entry = self.wal.quarantine(record, error, reason=reason)
        self.quarantined += 1
        if reason == "canary":
            self.canary_rejections += 1
        if self.http is not None:
            self.http.metrics.observe_quarantine()
            if reason == "canary":
                self.http.metrics.observe_canary_rejection()
        return entry

    def _rebuild_controller(self) -> None:
        """Replace the live controller with a fresh WAL replay.

        Runs after a quarantine: the old controller's graph may hold the
        poisoned delta's partial effects, and replay-without-the-record is
        the only rollback that provably matches the next boot.  Readers are
        never interrupted — the HTTP layer resolves ``controller.session``
        per batch, so in-flight requests finish on the old session and the
        next batch sees the rebuilt one.
        """
        assert self.wal is not None
        records = read_wal(self.wal.path)
        controller, report = _replay_plan(
            self.wal,
            records,
            root=self.config.root_path,
            make_controller=self.make_controller,
            genesis_config=self.genesis,
        )
        self.quarantined += int(report.get("quarantined_now", 0))
        self.controller = controller
        if self.http is not None:
            self.http.controller = controller
            self.http.metrics.set_version(controller.version)

    def _write_snapshot(self, report: SwapReport) -> None:
        """Checkpoint the live graph + bundle, then log the snapshot record.

        The snapshot files are digested (and their directory fsynced)
        before the WAL record commits, so replay can verify the checkpoint
        it is about to trust and fall back when the bytes rotted.
        """
        assert self.controller is not None and self.wal is not None
        root = self.config.root_path
        name = f"snap-{report.version:06d}"
        graph_rel = f"snapshots/{name}-graph.npz"
        bundle_rel = f"snapshots/{name}-bundle.npz"
        save_graph(self.controller.graph, root / graph_rel)
        save_bundle(self.controller.export_bundle(), root / bundle_rel)
        integrity.sync_dir(root / "snapshots")
        self.wal.append_snapshot(
            step=report.step,
            version=report.version,
            graph_path=graph_rel,
            bundle_path=bundle_rel,
            deltas_applied=self.deltas_committed,
            graph_sha256=integrity.file_digest(root / graph_rel),
            bundle_sha256=integrity.file_digest(root / bundle_rel),
        )

    # ------------------------------------------------------------------ #
    async def serve_forever(self) -> None:
        """Run until cancelled."""
        assert self.http is not None, "call start() first"
        await self.http.serve_forever()

    async def close(self) -> None:
        """Stop the pool, listeners and WAL (reverse of :meth:`start`)."""
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        if self.pool is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, self.pool.stop)
            self.pool = None
        for server in (self._admin_server, self._control_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._admin_server = self._control_server = None
        if self.http is not None:
            await self.http.close()
            self.http = None
        if self.wal is not None:
            self.wal.close()
            self.wal = None
        self.config.control_path.unlink(missing_ok=True)

    @property
    def stats(self) -> dict[str, object]:
        """Coordinator-level counters, surfaced under ``/stats``."""
        alive = self.pool.alive() if self.pool is not None else {}
        return {
            "role": "coordinator",
            "workers": self.config.workers,
            "workers_alive": sum(1 for ok in alive.values() if ok),
            "workers_registered": len(self._links),
            "respawns": self.pool.respawns if self.pool is not None else 0,
            "crash_looping": self.pool.crash_looping() if self.pool is not None else [],
            "deltas_committed": self.deltas_committed,
            "quarantined": self.quarantined,
            "canary_rejections": self.canary_rejections,
            "fallback_acks": self.fallback_acks,
            "publish_repairs": self.publish_repairs,
            "recovery": dict(self.recovery or {}),
        }
