"""The mmap-shared predictor worker pool.

Replication model
-----------------
The coordinator is the only process that condenses, trains or mutates the
graph.  After every committed delta it *publishes* the new model epoch as a
version directory::

    <root>/versions/v000007/
        bundle/          # ModelBundle, uncompressed dir layout (mmap-able)
        logits.npy       # the session's pre-computed logits, raw .npy
        meta.json        # {"version": 7, "targets": N, "classes": C}
    <root>/CURRENT       # JSON pointer to the newest version (atomic replace)

Workers never run the model: :func:`published_session` opens ``logits.npy``
with ``np.load(mmap_mode="r")`` and wraps it in
:meth:`~repro.serving.engine.InferenceSession.from_logits`, so serving a
prediction is a row-gather + ``argmax`` over pages the kernel shares across
the whole pool — N workers cost one physical copy of the model state.

All processes (coordinator + workers) listen on the *same* TCP port via
``SO_REUSEPORT``; the kernel load-balances incoming connections, so adding
workers scales accepted connections without a userspace proxy.

Swap protocol (no stale version after ack)
------------------------------------------
Each worker holds a unix-socket control connection to the coordinator:

1. worker connects and sends ``hello`` — *then* loads ``CURRENT`` and only
   after that starts accepting traffic (so a version published before the
   worker registered is always picked up);
2. on every committed delta the coordinator flips ``CURRENT`` first, then
   fans out a ``swap`` notice to every registered worker;
3. the worker atomically republishes its session (a single attribute
   store) **before** sending ``ack``;
4. the coordinator answers the ``/delta`` request only after every live
   worker acked, so a response observed after the delta ack can never
   carry a stale version.

A worker whose control connection drops exits (its supervisor respawns it);
a respawned worker re-runs step 1 and therefore starts on the newest
version.  ``POST /delta`` hitting a worker is forwarded to the
coordinator's loopback admin listener — clients never need to know which
process accepted their connection.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import socket
from pathlib import Path

import numpy as np

from repro.errors import ServingError
from repro.serving.artifacts import ModelBundle, save_bundle
from repro.utils import faults
from repro.serving.engine import InferenceSession
from repro.serving.server import (
    DEFAULT_MAX_BODY_BYTES,
    ServingServer,
)

__all__ = [
    "WorkerPool",
    "make_listen_socket",
    "published_session",
    "publish_version",
    "current_version",
    "set_current",
]

_VERSIONS_DIR = "versions"
_CURRENT = "CURRENT"


def make_listen_socket(host: str, port: int) -> socket.socket:
    """A bound TCP socket with ``SO_REUSEPORT`` (not yet listening).

    Every process of the pool binds its own socket to the same address;
    the kernel distributes incoming connections across them.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - linux CI
            raise ServingError(
                "the replicated pool needs SO_REUSEPORT, which this platform lacks"
            )
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, int(port)))
    except BaseException:
        sock.close()
        raise
    return sock


def _version_name(version: int) -> str:
    return f"v{int(version):06d}"


def publish_version(
    root: str | Path,
    *,
    version: int,
    bundle: ModelBundle,
    logits: np.ndarray,
) -> Path:
    """Write one version directory (bundle + logits + meta); returns its path.

    ``meta.json`` is written last, so a directory missing it is an
    unfinished publish and is never pointed to by ``CURRENT``.
    """
    root = Path(root)
    vdir = root / _VERSIONS_DIR / _version_name(version)
    vdir.mkdir(parents=True, exist_ok=True)
    save_bundle(bundle, vdir / "bundle", layout="dir")
    np.save(vdir / "logits.npy", np.ascontiguousarray(logits))
    meta = {
        "version": int(version),
        "targets": int(logits.shape[0]),
        "classes": int(logits.shape[1]),
    }
    (vdir / "meta.json").write_text(json.dumps(meta, sort_keys=True))
    return vdir


def set_current(root: str | Path, version: int) -> None:
    """Atomically point ``CURRENT`` at ``version`` (replace, never truncate)."""
    root = Path(root)
    pointer = {
        "version": int(version),
        "dir": f"{_VERSIONS_DIR}/{_version_name(version)}",
    }
    tmp = root / f".{_CURRENT}.tmp{os.getpid()}"
    tmp.write_text(json.dumps(pointer, sort_keys=True))
    os.replace(tmp, root / _CURRENT)


def current_version(root: str | Path) -> tuple[int, Path]:
    """``(version, version dir)`` that ``CURRENT`` points to."""
    root = Path(root)
    pointer_path = root / _CURRENT
    if not pointer_path.exists():
        raise ServingError(f"no published version under {root} (missing {_CURRENT})")
    pointer = json.loads(pointer_path.read_text())
    return int(pointer["version"]), root / str(pointer["dir"])


def published_session(
    root: str | Path,
    *,
    version: int | None = None,
    cache_size: int = 4096,
) -> InferenceSession:
    """Open a published version's logits (mmapped) as an
    :class:`~repro.serving.engine.InferenceSession`.

    ``version=None`` follows the ``CURRENT`` pointer; an explicit version
    opens that directory (the swap notice path).
    """
    root = Path(root)
    if version is None:
        version, vdir = current_version(root)
    else:
        vdir = root / _VERSIONS_DIR / _version_name(version)
    meta_path = vdir / "meta.json"
    if not meta_path.exists():
        raise ServingError(f"published version at {vdir} is incomplete (no meta.json)")
    meta = json.loads(meta_path.read_text())
    logits = np.load(vdir / "logits.npy", mmap_mode="r", allow_pickle=False)
    return InferenceSession.from_logits(
        logits, version=int(meta["version"]), cache_size=cache_size
    )


# ---------------------------------------------------------------------- #
# The worker process
# ---------------------------------------------------------------------- #
class _SessionProxy:
    """Duck-typed stand-in for ``ServingController`` in a read-only worker.

    Provides exactly the surface :class:`ServingServer` reads (``session``,
    ``version``, ``stats``); :meth:`publish` is the worker's atomic swap.
    """

    def __init__(self, session: InferenceSession | None = None) -> None:
        self._session = session
        self.swaps = 0

    @property
    def session(self) -> InferenceSession:
        if self._session is None:
            raise ServingError("worker has not loaded a published session yet")
        return self._session

    @property
    def version(self) -> int:
        return self.session.version

    @property
    def stats(self) -> dict[str, object]:
        return {"role": "worker", "version": self.version, "swaps": self.swaps}

    def publish(self, session: InferenceSession) -> None:
        # Single attribute store: readers see the old or the new session.
        self._session = session
        self.swaps += 1


class WorkerServer(ServingServer):
    """A worker's HTTP endpoint: local predictions, deltas forwarded."""

    def __init__(self, proxy: _SessionProxy, *, root: Path, admin_port: int, **kwargs) -> None:
        super().__init__(proxy, **kwargs)
        self.proxy = proxy
        self.root = Path(root)
        self.admin_port = int(admin_port)

    async def _handle_delta(self, body: bytes) -> tuple[int, dict]:
        # Workers are read-only replicas: the coordinator is the single
        # writer, reachable on its loopback admin listener.
        return await forward_delta("127.0.0.1", self.admin_port, body)


async def forward_delta(host: str, port: int, body: bytes) -> tuple[int, dict]:
    """Relay a ``POST /delta`` body to the coordinator; returns (status, json)."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        return 503, {"error": f"coordinator unreachable: {exc}"}
    try:
        writer.write(
            (
                f"POST /delta HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        raw = await reader.read()
    except (OSError, asyncio.IncompleteReadError) as exc:
        return 503, {"error": f"coordinator connection failed: {exc}"}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
    head, _, payload = raw.partition(b"\r\n\r\n")
    try:
        status = int(head.split(b" ", 2)[1])
        decoded = json.loads(payload.decode("utf-8") or "{}")
    except (IndexError, ValueError, json.JSONDecodeError):
        return 502, {"error": "unparseable coordinator response"}
    return status, decoded


def _control_line(message: dict) -> bytes:
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


async def _worker_async(slot: int, options: dict) -> None:
    from repro.serving.replicated.metrics import MetricsBoard

    root = Path(options["root"])
    board = MetricsBoard.attach(options["board"])
    metrics = board.slot(slot)
    proxy = _SessionProxy()

    # Register on the control channel BEFORE loading a session or serving:
    # any version committed after this handshake will be fanned out to us,
    # and CURRENT (read next) covers everything committed before it.
    reader, writer = await asyncio.open_unix_connection(options["control"])
    writer.write(_control_line({"type": "hello", "slot": slot, "pid": os.getpid()}))
    await writer.drain()
    welcome = json.loads(await reader.readline())
    if welcome.get("type") != "welcome":  # pragma: no cover - defensive
        raise ServingError(f"unexpected control greeting: {welcome}")

    cache_size = int(options.get("cache_size", 4096))
    proxy.publish(published_session(root, cache_size=cache_size))
    sock = make_listen_socket(options["host"], int(options["port"]))
    server = WorkerServer(
        proxy,
        root=root,
        admin_port=int(options["admin_port"]),
        host=options["host"],
        port=int(options["port"]),
        sock=sock,
        max_batch=int(options.get("max_batch", 256)),
        batch_window_seconds=float(options.get("batch_window_seconds", 0.002)),
        max_body_bytes=int(options.get("max_body_bytes", DEFAULT_MAX_BODY_BYTES)),
        admission_capacity=int(options.get("max_pending", 0)),
        metrics=metrics,
    )
    await server.start()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break  # coordinator gone: exit, the next one respawns us
            message = json.loads(line)
            kind = message.get("type")
            if kind == "swap":
                version = int(message["version"])
                session = published_session(
                    root, version=version, cache_size=cache_size
                )
                proxy.publish(session)  # before the ack: never stale after it
                metrics.set_version(version)
                writer.write(
                    _control_line({"type": "ack", "slot": slot, "version": version})
                )
                await writer.drain()
            elif kind == "stop":
                break
    finally:
        await server.close()
        writer.close()


def _worker_main(slot: int, options: dict) -> None:
    """Spawn entry point of one predictor worker process."""
    try:
        asyncio.run(_worker_async(slot, options))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    except (ConnectionRefusedError, ConnectionResetError, FileNotFoundError):
        # The coordinator died while this worker was still booting (its
        # control socket is gone).  There is nothing to serve and nobody to
        # report to — exit quietly; a live coordinator respawns workers.
        pass


# ---------------------------------------------------------------------- #
# Supervision (runs inside the coordinator)
# ---------------------------------------------------------------------- #
class WorkerPool:
    """Spawns N worker processes and respawns any that die.

    Workers are ``spawn``-context processes (no inherited locks or event
    loops); each one re-reads its state from the published version
    directories, which is what makes respawn-after-kill safe.
    """

    def __init__(self, *, workers: int, options: dict) -> None:
        if workers < 1:
            raise ServingError(f"worker pool needs >= 1 worker, got {workers}")
        self.workers = int(workers)
        self.options = dict(options)
        self._context = multiprocessing.get_context("spawn")
        self._processes: dict[int, multiprocessing.process.BaseProcess] = {}
        self._stopping = False
        self.respawns = 0

    def start(self) -> None:
        """Launch every worker (slots ``1..workers``; slot 0 is the coordinator)."""
        for slot in range(1, self.workers + 1):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        process = self._context.Process(
            target=_worker_main,
            args=(slot, self.options),
            name=f"repro-worker-{slot}",
            daemon=True,
        )
        process.start()
        self._processes[slot] = process

    def alive(self) -> dict[int, bool]:
        """Liveness per slot."""
        return {slot: proc.is_alive() for slot, proc in self._processes.items()}

    def _maybe_inject_kill(self) -> int | None:
        """``pool.worker_kill`` fault site: SIGKILL one live worker.

        The kill is indistinguishable from a real crash — the same
        supervise tick (or the next) notices the dead process and respawns
        it onto ``CURRENT``.  The action's ``slot`` key picks the victim;
        an absent or dead slot falls back to the lowest live one.
        """
        action = faults.fire("pool.worker_kill")
        if action is None:
            return None
        live = sorted(
            slot for slot, proc in self._processes.items() if proc.is_alive()
        )
        if not live:
            return None
        slot = action.get("slot")
        if slot not in live:
            slot = live[0]
        self._processes[slot].kill()
        self._processes[slot].join(timeout=5.0)
        return slot

    async def supervise(self, *, interval: float = 0.25) -> None:
        """Respawn dead workers until :meth:`stop` is called."""
        while not self._stopping:
            self._maybe_inject_kill()
            for slot, process in list(self._processes.items()):
                if not process.is_alive() and not self._stopping:
                    process.join(timeout=0)
                    self._spawn(slot)
                    self.respawns += 1
            await asyncio.sleep(interval)

    def stop(self, *, timeout: float = 5.0) -> None:
        """Terminate every worker and wait for the processes to exit."""
        self._stopping = True
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        for process in self._processes.values():
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=timeout)
        self._processes.clear()
