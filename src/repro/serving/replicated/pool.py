"""The mmap-shared predictor worker pool.

Replication model
-----------------
The coordinator is the only process that condenses, trains or mutates the
graph.  After every committed delta it *publishes* the new model epoch as a
version directory::

    <root>/versions/v000007/
        bundle/          # ModelBundle, uncompressed dir layout (mmap-able)
        logits.npy       # the session's pre-computed logits, raw .npy
        meta.json        # {"version": 7, "targets": N, "classes": C}
    <root>/CURRENT       # JSON pointer to the newest version (atomic replace)

Workers never run the model: :func:`published_session` opens ``logits.npy``
with ``np.load(mmap_mode="r")`` and wraps it in
:meth:`~repro.serving.engine.InferenceSession.from_logits`, so serving a
prediction is a row-gather + ``argmax`` over pages the kernel shares across
the whole pool — N workers cost one physical copy of the model state.

All processes (coordinator + workers) listen on the *same* TCP port via
``SO_REUSEPORT``; the kernel load-balances incoming connections, so adding
workers scales accepted connections without a userspace proxy.

Swap protocol (no stale version after ack)
------------------------------------------
Each worker holds a unix-socket control connection to the coordinator:

1. worker connects and sends ``hello`` — *then* loads ``CURRENT`` and only
   after that starts accepting traffic (so a version published before the
   worker registered is always picked up);
2. on every committed delta the coordinator flips ``CURRENT`` first, then
   fans out a ``swap`` notice to every registered worker;
3. the worker atomically republishes its session (a single attribute
   store) **before** sending ``ack``;
4. the coordinator answers the ``/delta`` request only after every live
   worker acked, so a response observed after the delta ack can never
   carry a stale version.

A worker whose control connection drops exits (its supervisor respawns it);
a respawned worker re-runs step 1 and therefore starts on the newest
version.  ``POST /delta`` hitting a worker is forwarded to the
coordinator's loopback admin listener — clients never need to know which
process accepted their connection.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import random
import socket
import sys
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import IntegrityError, ServingError
from repro.obs.propagate import inject_headers
from repro.serving import integrity
from repro.serving.artifacts import ModelBundle, save_bundle
from repro.utils import faults
from repro.serving.engine import InferenceSession
from repro.serving.server import (
    DEFAULT_MAX_BODY_BYTES,
    ServingServer,
)

__all__ = [
    "WorkerPool",
    "make_listen_socket",
    "published_session",
    "publish_version",
    "current_version",
    "set_current",
    "forward_delta",
    "backoff_delays",
]

_VERSIONS_DIR = "versions"
_CURRENT = "CURRENT"


def make_listen_socket(host: str, port: int) -> socket.socket:
    """A bound TCP socket with ``SO_REUSEPORT`` (not yet listening).

    Every process of the pool binds its own socket to the same address;
    the kernel distributes incoming connections across them.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover - linux CI
            raise ServingError(
                "the replicated pool needs SO_REUSEPORT, which this platform lacks"
            )
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, int(port)))
    except BaseException:
        sock.close()
        raise
    return sock


def _version_name(version: int) -> str:
    return f"v{int(version):06d}"


def publish_version(
    root: str | Path,
    *,
    version: int,
    bundle: ModelBundle,
    logits: np.ndarray,
) -> Path:
    """Write one version directory (bundle + logits + manifest + meta).

    Write order is the integrity contract: payload files first, then
    ``manifest.json`` with their SHA-256 digests, then ``meta.json`` — so a
    directory missing meta is an unfinished publish (never pointed to by
    ``CURRENT``) and a directory whose bytes don't match its manifest is a
    corrupt one (detected by :func:`published_session` before mmap).  The
    ``publish.corrupt_file`` / ``publish.truncate_manifest`` fault sites
    strike between manifest and meta, the window real partial writes land
    in.  The version directory is fsynced so the publish survives power
    loss, not just process death.
    """
    root = Path(root)
    vdir = root / _VERSIONS_DIR / _version_name(version)
    vdir.mkdir(parents=True, exist_ok=True)
    save_bundle(bundle, vdir / "bundle", layout="dir")
    np.save(vdir / "logits.npy", np.ascontiguousarray(logits))
    integrity.write_manifest(vdir)
    corrupt = faults.fire("publish.corrupt_file")
    if corrupt is not None:
        # Fault site: damage a published payload file *after* its digest
        # was recorded — the shape of bit rot or a torn write.
        needle = str(corrupt.get("filename", "logits.npy"))
        victims = [p for p in sorted(vdir.rglob("*")) if p.is_file() and needle in p.name]
        for victim in victims[:1]:
            with open(victim, "r+b") as handle:
                handle.seek(int(corrupt.get("flip_at", 0)))
                byte = handle.read(1)
                handle.seek(int(corrupt.get("flip_at", 0)))
                handle.write(bytes([byte[0] ^ 0xFF]) if byte else b"\xff")
    truncate = faults.fire("publish.truncate_manifest")
    if truncate is not None:
        # Fault site: tear the manifest itself mid-write.
        manifest_path = vdir / integrity.MANIFEST_NAME
        size = manifest_path.stat().st_size
        keep = int(truncate.get("keep_bytes", size // 2))
        with open(manifest_path, "r+b") as handle:
            handle.truncate(max(0, min(keep, size)))
    meta = {
        "version": int(version),
        "targets": int(logits.shape[0]),
        "classes": int(logits.shape[1]),
    }
    (vdir / "meta.json").write_text(json.dumps(meta, sort_keys=True))
    integrity.sync_dir(vdir)
    integrity.sync_dir(vdir.parent)
    return vdir


def set_current(root: str | Path, version: int) -> None:
    """Atomically point ``CURRENT`` at ``version`` (replace, never truncate).

    The parent directory is fsynced after the replace: without it the
    rename is atomic against process death but not power loss, and a
    rebooted machine could come back pointing at the *previous* version of
    an already-acknowledged publish.
    """
    root = Path(root)
    pointer = {
        "version": int(version),
        "dir": f"{_VERSIONS_DIR}/{_version_name(version)}",
    }
    tmp = root / f".{_CURRENT}.tmp{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(pointer, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, root / _CURRENT)
    integrity.sync_dir(root)


def current_version(root: str | Path) -> tuple[int, Path]:
    """``(version, version dir)`` that ``CURRENT`` points to."""
    root = Path(root)
    pointer_path = root / _CURRENT
    if not pointer_path.exists():
        raise ServingError(f"no published version under {root} (missing {_CURRENT})")
    pointer = json.loads(pointer_path.read_text())
    return int(pointer["version"]), root / str(pointer["dir"])


def _open_session(vdir: Path, *, cache_size: int) -> InferenceSession:
    meta = json.loads((vdir / "meta.json").read_text())
    logits = np.load(vdir / "logits.npy", mmap_mode="r", allow_pickle=False)
    return InferenceSession.from_logits(
        logits, version=int(meta["version"]), cache_size=cache_size
    )


def published_session(
    root: str | Path,
    *,
    version: int | None = None,
    cache_size: int = 4096,
    fallback: bool = True,
) -> InferenceSession:
    """Open a published version's logits (mmapped) as an
    :class:`~repro.serving.engine.InferenceSession`.

    ``version=None`` follows the ``CURRENT`` pointer; an explicit version
    opens that directory (the swap notice path).  The directory's manifest
    is verified before mmap; a corrupt or incomplete publish falls back to
    the newest version that *does* verify (``fallback=False`` raises the
    :class:`~repro.errors.IntegrityError` instead).  Callers detect a
    fallback by comparing ``session.version`` to what they asked for.
    """
    root = Path(root)
    if version is None:
        version, vdir = current_version(root)
    else:
        vdir = root / _VERSIONS_DIR / _version_name(version)
    try:
        integrity.verify_version_dir(vdir)
    except IntegrityError:
        if not fallback:
            raise
        # Serve the newest verifiable version rather than garbage bytes.
        _, vdir = integrity.last_good_version(root, exclude=(int(version),))
    return _open_session(vdir, cache_size=cache_size)


# ---------------------------------------------------------------------- #
# The worker process
# ---------------------------------------------------------------------- #
class _SessionProxy:
    """Duck-typed stand-in for ``ServingController`` in a read-only worker.

    Provides exactly the surface :class:`ServingServer` reads (``session``,
    ``version``, ``stats``); :meth:`publish` is the worker's atomic swap.
    """

    def __init__(self, session: InferenceSession | None = None) -> None:
        self._session = session
        self.swaps = 0

    @property
    def session(self) -> InferenceSession:
        if self._session is None:
            raise ServingError("worker has not loaded a published session yet")
        return self._session

    @property
    def version(self) -> int:
        return self.session.version

    @property
    def stats(self) -> dict[str, object]:
        return {"role": "worker", "version": self.version, "swaps": self.swaps}

    def publish(self, session: InferenceSession) -> None:
        # Single attribute store: readers see the old or the new session.
        self._session = session
        self.swaps += 1


class WorkerServer(ServingServer):
    """A worker's HTTP endpoint: local predictions, deltas forwarded."""

    def __init__(self, proxy: _SessionProxy, *, root: Path, admin_port: int, **kwargs) -> None:
        super().__init__(proxy, **kwargs)
        self.proxy = proxy
        self.root = Path(root)
        self.admin_port = int(admin_port)

    async def _handle_delta(self, body: bytes) -> tuple[int, dict]:
        # Workers are read-only replicas: the coordinator is the single
        # writer, reachable on its loopback admin listener.
        return await forward_delta("127.0.0.1", self.admin_port, body)


#: forward_delta retry policy: bounded, exponential, jittered
FORWARD_ATTEMPTS = 4
FORWARD_BASE_DELAY = 0.05
FORWARD_MAX_DELAY = 1.0
FORWARD_JITTER = 0.25


def backoff_delays(
    attempts: int,
    *,
    base: float = FORWARD_BASE_DELAY,
    cap: float = FORWARD_MAX_DELAY,
    jitter: float = FORWARD_JITTER,
    seed: int = 0,
) -> tuple[float, ...]:
    """The sleep schedule between ``attempts`` retries: capped exponential
    with deterministic jitter.

    Delay ``i`` is ``min(cap, base * 2**i) * (1 + jitter * u_i)`` with
    ``u_i`` drawn from a seeded uniform [0, 1).  With ``jitter <= 1`` the
    pre-cap schedule stays strictly monotone (the jittered value never
    reaches the next doubling), so retries always spread out — the property
    the backoff tests pin — while distinct seeds desynchronise a pool of
    workers hammering a recovering coordinator.
    """
    rng = random.Random(int(seed))
    delays = []
    for index in range(max(0, int(attempts))):
        delays.append(min(float(cap), float(base) * (2.0**index)) * (1.0 + float(jitter) * rng.random()))
    return tuple(delays)


async def forward_delta(
    host: str,
    port: int,
    body: bytes,
    *,
    attempts: int = FORWARD_ATTEMPTS,
    base_delay: float = FORWARD_BASE_DELAY,
    max_delay: float = FORWARD_MAX_DELAY,
    jitter: float = FORWARD_JITTER,
    seed: int | None = None,
) -> tuple[int, dict]:
    """Relay a ``POST /delta`` body to the coordinator; returns (status, json).

    Connection failures are retried up to ``attempts`` times with
    :func:`backoff_delays` sleeps in between — a coordinator mid-respawn
    looks exactly like a refused connection, and a bounded retry absorbs
    it.  When every attempt fails the worker answers a structured *degraded*
    503 (``degraded``/``attempts``/``retry_after_seconds``) and keeps
    serving reads: losing the writer never takes down the read path.
    """
    if seed is None:
        seed = os.getpid()
    delays = backoff_delays(
        max(0, attempts - 1), base=base_delay, cap=max_delay, jitter=jitter, seed=seed
    )
    failure: dict = {"error": "coordinator unreachable"}
    # Carry the worker's serve.delta span across the hop: the coordinator's
    # read_http_request decodes this header and parents commit.delta to it.
    trace_headers = "".join(
        f"{name}: {value}\r\n" for name, value in inject_headers().items()
    )
    for attempt in range(max(1, attempts)):
        if attempt:
            await asyncio.sleep(delays[attempt - 1])
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            failure = {"error": f"coordinator unreachable: {exc}"}
            continue
        try:
            writer.write(
                (
                    f"POST /delta HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: {len(body)}\r\n{trace_headers}"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
            raw = await reader.read()
        except (OSError, asyncio.IncompleteReadError) as exc:
            failure = {"error": f"coordinator connection failed: {exc}"}
            continue
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        head, _, payload = raw.partition(b"\r\n\r\n")
        try:
            status = int(head.split(b" ", 2)[1])
            decoded = json.loads(payload.decode("utf-8") or "{}")
        except (IndexError, ValueError, json.JSONDecodeError):
            return 502, {"error": "unparseable coordinator response"}
        return status, decoded
    failure.update(
        {
            "degraded": True,
            "attempts": int(attempts),
            "retry_after_seconds": max(1, int(round(max_delay))),
        }
    )
    return 503, failure


def _control_line(message: dict) -> bytes:
    return json.dumps(message, sort_keys=True).encode("utf-8") + b"\n"


async def _worker_async(slot: int, options: dict) -> None:
    from repro.serving.replicated.metrics import MetricsBoard

    root = Path(options["root"])
    board = MetricsBoard.attach(options["board"])
    metrics = board.slot(slot)
    proxy = _SessionProxy()

    # Injectors are per-process: a chaos plan targeting worker-side sites is
    # shipped as JSON specs and rebuilt here, with fires surfaced through
    # this worker's row of the shared board (coordinator /metrics sees them).
    plans = options.get("fault_plans") or ()
    if plans:
        injector = faults.FaultInjector.from_specs(
            plans, seed=int(options.get("fault_seed", slot))
        )
        injector.sink = metrics.observe_fault
        faults.install(injector)

    # Register on the control channel BEFORE loading a session or serving:
    # any version committed after this handshake will be fanned out to us,
    # and CURRENT (read next) covers everything committed before it.
    reader, writer = await asyncio.open_unix_connection(options["control"])
    writer.write(_control_line({"type": "hello", "slot": slot, "pid": os.getpid()}))
    await writer.drain()
    welcome = json.loads(await reader.readline())
    if welcome.get("type") != "welcome":  # pragma: no cover - defensive
        raise ServingError(f"unexpected control greeting: {welcome}")

    cache_size = int(options.get("cache_size", 4096))
    wanted, _ = current_version(root)
    # reprolint: disable-next=REP-A401 boot path: the worker server is not listening yet
    session = published_session(root, cache_size=cache_size)
    if session.version != wanted:
        # CURRENT points at a corrupt publish: serve last-good, stale beats
        # garbage.  The next committed version swaps us back in sync.
        metrics.observe_integrity_fallback()
    proxy.publish(session)
    sock = make_listen_socket(options["host"], int(options["port"]))
    server = WorkerServer(
        proxy,
        root=root,
        admin_port=int(options["admin_port"]),
        host=options["host"],
        port=int(options["port"]),
        sock=sock,
        max_batch=int(options.get("max_batch", 256)),
        batch_window_seconds=float(options.get("batch_window_seconds", 0.002)),
        max_body_bytes=int(options.get("max_body_bytes", DEFAULT_MAX_BODY_BYTES)),
        admission_capacity=int(options.get("max_pending", 0)),
        metrics=metrics,
    )
    await server.start()
    try:
        while True:
            line = await reader.readline()
            if not line:
                break  # coordinator gone: exit, the next one respawns us
            message = json.loads(line)
            kind = message.get("type")
            if kind == "swap":
                version = int(message["version"])
                # Digest verification + np.load off the loop: in-flight
                # /predict requests keep draining against the old session
                # while the new one loads.
                loop = asyncio.get_running_loop()
                with obs.span("swap.build_session", version=version):
                    session = await loop.run_in_executor(
                        None,
                        lambda: published_session(
                            root, version=version, cache_size=cache_size
                        ),
                    )
                if session.version != version:
                    # Requested version failed verification; we loaded
                    # last-good.  Ack with what we actually serve so the
                    # coordinator can tell "degraded but alive" (don't
                    # respawn: a fresh process would hit the same bytes)
                    # from "unresponsive" (respawn).
                    metrics.observe_integrity_fallback()
                proxy.publish(session)  # before the ack: never stale after it
                metrics.set_version(session.version)
                writer.write(
                    _control_line(
                        {
                            "type": "ack",
                            "slot": slot,
                            "version": session.version,
                            "requested": version,
                        }
                    )
                )
                await writer.drain()
            elif kind == "stop":
                break
    finally:
        await server.close()
        writer.close()


def _worker_main(slot: int, options: dict) -> None:
    """Spawn entry point of one predictor worker process."""
    # Pick up a trace session exported by the parent (``repro trace record``
    # / ``--trace``): spans land in the ``<file>.worker-<slot>`` sidecar.
    tracer = obs.bootstrap_from_env(f"worker-{slot}")
    try:
        asyncio.run(_worker_async(slot, options))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    except (ConnectionRefusedError, ConnectionResetError, FileNotFoundError):
        # The coordinator died while this worker was still booting (its
        # control socket is gone).  There is nothing to serve and nobody to
        # report to — exit quietly; a live coordinator respawns workers.
        pass
    finally:
        if tracer is not None:
            obs.uninstall()
            tracer.close()


def _crash_main(slot: int, options: dict) -> None:
    """``pool.crash_loop`` fault body: a worker that dies the instant it boots."""
    sys.exit(1)


# ---------------------------------------------------------------------- #
# Supervision (runs inside the coordinator)
# ---------------------------------------------------------------------- #
class WorkerPool:
    """Spawns N worker processes and respawns any that die.

    Workers are ``spawn``-context processes (no inherited locks or event
    loops); each one re-reads its state from the published version
    directories, which is what makes respawn-after-kill safe.
    """

    #: supervise backoff: first respawn is immediate, then delays double
    BACKOFF_BASE = 0.25
    BACKOFF_CAP = 5.0
    #: a worker alive this long clears its slot's backoff history
    BACKOFF_RESET_AFTER = 10.0

    def __init__(self, *, workers: int, options: dict, metrics=None) -> None:
        if workers < 1:
            raise ServingError(f"worker pool needs >= 1 worker, got {workers}")
        self.workers = int(workers)
        self.options = dict(options)
        self.metrics = metrics
        self._context = multiprocessing.get_context("spawn")
        self._processes: dict[int, multiprocessing.process.BaseProcess] = {}
        self._stopping = False
        self.respawns = 0
        # per-slot crash-loop state: current backoff delay, earliest next
        # respawn (monotonic time), and when the live process was spawned
        self._backoff: dict[int, float] = {}
        self._not_before: dict[int, float] = {}
        self._spawned_at: dict[int, float] = {}

    def start(self) -> None:
        """Launch every worker (slots ``1..workers``; slot 0 is the coordinator)."""
        for slot in range(1, self.workers + 1):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        target = _worker_main
        if faults.fire("pool.crash_loop") is not None:
            # Fault site: this spawn produces a worker that exits at boot,
            # turning the slot into a genuine crash loop until the plan's
            # limit runs out.
            target = _crash_main
        process = self._context.Process(
            target=target,
            args=(slot, self.options),
            name=f"repro-worker-{slot}",
            daemon=True,
        )
        process.start()
        self._processes[slot] = process
        self._spawned_at[slot] = time.monotonic()

    def alive(self) -> dict[int, bool]:
        """Liveness per slot."""
        return {slot: proc.is_alive() for slot, proc in self._processes.items()}

    def _maybe_inject_kill(self) -> int | None:
        """``pool.worker_kill`` fault site: SIGKILL one live worker.

        The kill is indistinguishable from a real crash — the same
        supervise tick (or the next) notices the dead process and respawns
        it onto ``CURRENT``.  The action's ``slot`` key picks the victim;
        an absent or dead slot falls back to the lowest live one.
        """
        action = faults.fire("pool.worker_kill")
        if action is None:
            return None
        live = sorted(
            slot for slot, proc in self._processes.items() if proc.is_alive()
        )
        if not live:
            return None
        slot = action.get("slot")
        if slot not in live:
            slot = live[0]
        self._processes[slot].kill()
        self._processes[slot].join(timeout=5.0)
        return slot

    def respawn_slot(self, slot: int) -> None:
        """Kill (if needed) and relaunch one slot — the ack-timeout path.

        A worker that registered but stopped answering swap notices is
        wedged, not dead; ``is_alive`` supervision will never touch it, so
        the coordinator calls this to replace it outright.
        """
        process = self._processes.get(slot)
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5.0)
        self._spawn(slot)
        self.respawns += 1

    def _observe_dead(self, slot: int, now: float) -> bool:
        """Backoff bookkeeping for a dead slot; True when it may respawn now.

        First death respawns immediately; each subsequent death within
        :attr:`BACKOFF_RESET_AFTER` of its spawn doubles the slot's delay up
        to :attr:`BACKOFF_CAP`, so a worker that dies at boot costs a
        bounded fork/exec rate instead of a hot loop.
        """
        if now < self._not_before.get(slot, 0.0):
            return False
        lived = now - self._spawned_at.get(slot, now)
        if lived >= self.BACKOFF_RESET_AFTER:
            self._backoff.pop(slot, None)
        previous = self._backoff.get(slot)
        delay = (
            0.0
            if previous is None
            else min(self.BACKOFF_CAP, max(self.BACKOFF_BASE, previous * 2.0))
        )
        self._backoff[slot] = delay if previous is not None else self.BACKOFF_BASE
        self._not_before[slot] = now + delay
        return True

    def crash_looping(self) -> list[int]:
        """Slots currently held in (non-trivial) crash-loop backoff."""
        return sorted(
            slot
            for slot, delay in self._backoff.items()
            if delay > self.BACKOFF_BASE
        )

    async def supervise(self, *, interval: float = 0.25) -> None:
        """Respawn dead workers (with per-slot backoff) until :meth:`stop`."""
        while not self._stopping:
            self._maybe_inject_kill()
            now = time.monotonic()
            for slot, process in list(self._processes.items()):
                if process.is_alive():
                    if now - self._spawned_at.get(slot, now) >= self.BACKOFF_RESET_AFTER:
                        self._backoff.pop(slot, None)
                    continue
                if not self._stopping and self._observe_dead(slot, now):
                    process.join(timeout=0)
                    self._spawn(slot)
                    self.respawns += 1
            if self.metrics is not None:
                self.metrics.set_crash_looping(len(self.crash_looping()))
            await asyncio.sleep(interval)

    def stop(self, *, timeout: float = 5.0) -> None:
        """Terminate every worker and wait for the processes to exit."""
        self._stopping = True
        for process in self._processes.values():
            if process.is_alive():
                process.terminate()
        for process in self._processes.values():
            process.join(timeout=timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=timeout)
        self._processes.clear()
