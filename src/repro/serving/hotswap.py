"""Zero-downtime model refresh on streaming graph deltas.

:class:`ServingController` glues PR 4's streaming machinery to the
prediction engine:

1. a :class:`~repro.streaming.delta.GraphDelta` arrives and is applied by
   the controller's :class:`~repro.streaming.incremental.IncrementalCondenser`
   (warm memos, byte-identical to full recondensation);
2. if the re-condensed graph is **byte-identical** to the previous one, the
   trained model is *provably* unchanged — training is deterministic (pure
   NumPy, fixed seed, same inputs), so re-running it would reproduce the
   same weights bit for bit — and retraining is skipped; otherwise a fresh
   model is trained on the patched condensed graph;
3. a new :class:`~repro.serving.engine.InferenceSession` is built against
   the mutated live graph (feature propagation rides the condenser's warm
   context) and **atomically** swapped in: readers always see either the
   complete old session or the complete new one, never a half-built state,
   so in-flight requests are never dropped;
4. the old session's LRU label cache is carried into the new session *iff*
   the model was not retrained, minus the delta's **dirty set**
   (:attr:`repro.streaming.apply.ApplyReport.dirty_targets` — a sound
   over-approximation of the target rows whose propagated features
   changed).  A retrain, or an unknown dirty set (full-recondense
   fallback), flushes the cache entirely.

Swaps are serialised by a lock; :attr:`ServingController.session` is a
single attribute read and therefore safe from any thread (the asyncio
server reads it while a worker thread swaps).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter, sleep as time_sleep
from typing import Callable

import numpy as np

from repro import obs
from repro.core.condenser import FreeHGC
from repro.errors import CanaryRejectedError, ServingError
from repro.hetero.graph import HeteroGraph
from repro.models.base import HGNNClassifier
from repro.serving.artifacts import ModelBundle
from repro.serving.canary import CanaryConfig, pin_canary_ids, evaluate_candidate
from repro.serving.engine import InferenceSession
from repro.streaming.delta import GraphDelta
from repro.streaming.incremental import IncrementalCondenser, graphs_equal
from repro.utils import faults

__all__ = ["SwapReport", "ServingController"]


@dataclass
class SwapReport:
    """What one hot-swap did and what it cost."""

    step: int
    #: condensation mode of the underlying step ("incremental" or "full")
    mode: str
    #: new session version now serving
    version: int
    #: whether a fresh model was trained (condensed graph changed)
    retrained: bool
    #: size of the dirty target set, or -1 when unknown (cache flushed)
    dirty_count: int
    #: LRU entries carried over from the previous session's cache
    cache_carried: int
    condense_seconds: float
    train_seconds: float
    #: total wall-clock of the swap (apply + condense + train + precompute)
    swap_seconds: float


class ServingController:
    """Owns the live graph, the condensed model and the serving session.

    Parameters
    ----------
    graph:
        The live full graph (the controller owns and mutates it).
    model_factory:
        Zero-argument callable building an *unfitted* evaluation model
        (e.g. :func:`repro.evaluation.pipeline.make_model_factory` output).
        Must be deterministic: same condensed graph in, same weights out.
    model_name:
        Registry name recorded in exported bundles.
    ratio:
        Condensation ratio applied at every (re)condensation.
    condenser / recondense_threshold / seed:
        Forwarded to :class:`~repro.streaming.incremental.IncrementalCondenser`.
    cache_size:
        LRU label-cache capacity per session.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        model_factory: Callable[[], HGNNClassifier],
        *,
        model_name: str = "model",
        ratio: float,
        condenser: FreeHGC | None = None,
        recondense_threshold: float = 0.05,
        seed: int = 0,
        cache_size: int = 4096,
        canary: CanaryConfig | None = None,
    ) -> None:
        self.incremental = IncrementalCondenser(
            graph,
            condenser=condenser,
            ratio=ratio,
            recondense_threshold=recondense_threshold,
            seed=seed,
        )
        self.model_factory = model_factory
        self.model_name = str(model_name)
        self.cache_size = int(cache_size)
        self._session: InferenceSession | None = None
        self._model: HGNNClassifier | None = None
        self._condensed: HeteroGraph | None = None
        self._version = 0
        self._swap_lock = threading.Lock()
        self.swap_history: list[SwapReport] = []
        #: swap gate: score candidates on a pinned canary set before publish
        self.canary = canary
        self._canary_ids: np.ndarray | None = None
        self.canary_history: list = []
        self.canary_rejections = 0
        #: whether :meth:`start` adopted a persisted bundle instead of training
        self.warm_started = False
        # The dirty set is computed with the *condenser's* hop limit, so it
        # only bounds feature changes of a model propagating with the same
        # limit.  A model reaching further could change where the dirty set
        # says clean — carrying its cache would serve stale labels, so
        # carry-over is enabled only when the hop limits provably agree.
        probe = model_factory()
        probe_hops = getattr(getattr(probe, "config", None), "max_hops", None)
        self._carry_cache = probe_hops == self.incremental.condenser.max_hops

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> HeteroGraph:
        """The live graph (mutated in place by :meth:`apply_delta`)."""
        return self.incremental.graph

    @property
    def session(self) -> InferenceSession:
        """The current serving session (atomic reference read)."""
        session = self._session
        if session is None:
            raise ServingError("controller not started: call start() first")
        return session

    @property
    def condensed(self) -> HeteroGraph | None:
        """The condensed graph the current model was trained on."""
        return self._condensed

    @property
    def version(self) -> int:
        """Version of the session currently serving."""
        return self._version

    # ------------------------------------------------------------------ #
    def start(self, *, warm_bundle: ModelBundle | None = None) -> InferenceSession:
        """Cold start: condense, train (or adopt a bundle), build the session.

        ``warm_bundle`` lets a deployment resume from persisted weights: it
        is adopted only when the fresh condensation is byte-identical to
        the bundle's condensed graph (training is deterministic, so the
        stored weights are then provably what retraining would produce).
        Otherwise the bundle is ignored and a fresh model is trained.
        :attr:`warm_started` records which path ran.
        """
        with self._swap_lock:
            condensed = self.incremental.condense()
            model: HGNNClassifier | None = None
            if warm_bundle is not None and graphs_equal(
                condensed, warm_bundle.condensed
            ):
                model = warm_bundle.build_model()
            self.warm_started = model is not None
            if model is None:
                model = self.model_factory()
                model.fit(condensed)
            self._condensed = condensed
            self._model = model
            self._version = 1
            session = InferenceSession(
                model,
                self.graph,
                version=self._version,
                cache_size=self.cache_size,
                context=self.incremental.context,
            )
            self._session = session
            if self.canary is not None:
                self._canary_ids = pin_canary_ids(
                    session.num_targets, size=self.canary.size, seed=self.canary.seed
                )
            return session

    def apply_delta(self, delta: GraphDelta) -> SwapReport:
        """Apply ``delta``, refresh the model if needed, and swap sessions.

        Safe to call from a worker thread while another thread serves
        predictions from :attr:`session`; concurrent ``apply_delta`` calls
        are serialised.
        """
        if self._session is None:
            raise ServingError("controller not started: call start() first")
        with self._swap_lock, obs.span("swap.apply", step=int(delta.step)):
            poison = faults.fire("hotswap.poison_commit")
            if poison is not None:
                # Fault site: a delta whose commit deterministically crashes.
                # Raised before any state is touched so the single-process
                # tier keeps serving; the replicated tier quarantines the WAL
                # record and rebuilds.
                raise faults.InjectedFault(
                    f"hotswap.poison_commit on delta step {delta.step}"
                )
            swap_start = perf_counter()
            step = self.incremental.step(delta)
            retrain = self._condensed is None or not graphs_equal(
                step.condensed, self._condensed
            )
            train_seconds = 0.0
            if retrain:
                with obs.span("swap.train"):
                    train_start = perf_counter()
                    model = self.model_factory()
                    model.fit(step.condensed)
                    train_seconds = perf_counter() - train_start
            else:
                model = self._model
                obs.event("swap.train_skipped", reason="condensed graph unchanged")
            assert model is not None
            new_version = self._version + 1
            with obs.span("swap.build_session", version=new_version):
                session = InferenceSession(
                    model,
                    self.graph,
                    version=new_version,
                    cache_size=self.cache_size,
                    context=self.incremental.context,
                )
            dirty = (
                None
                if step.apply_report is None
                else step.apply_report.dirty_targets
            )
            if self.canary is not None and self._canary_ids is not None:
                with obs.span("swap.canary", candidate=new_version) as canary_span:
                    canary_report = evaluate_candidate(
                        session,
                        self._session,
                        self._canary_ids,
                        dirty=dirty,
                        config=self.canary,
                    )
                    if canary_span is not None:
                        canary_span.attrs["passed"] = bool(canary_report.passed)
                self.canary_history.append(canary_report)
                if not canary_report.passed:
                    # Roll back: none of the published state was touched yet,
                    # so refusing to assign *is* the rollback — the previous
                    # session keeps answering.  (The live graph retains the
                    # delta and self._condensed is now stale, which forces a
                    # retrain on the next delta; the replicated tier instead
                    # quarantines the WAL record and rebuilds for an exact
                    # pre-delta state.)
                    self.canary_rejections += 1
                    raise CanaryRejectedError(
                        "canary rejected candidate version "
                        f"{new_version}: {'; '.join(canary_report.reasons)}",
                        report=canary_report.to_dict(),
                    )
            carried = 0
            if not retrain and dirty is not None and self._carry_cache:
                old_session = self._session
                carried = session.cache.adopt(old_session.cache, drop=dirty)
            self._condensed = step.condensed
            self._model = model
            self._version = new_version
            hold = faults.fire("hotswap.delay_publish")
            if hold is not None:
                # Fault site: stretch the window between building the new
                # session and publishing it, so readers race a slow swap.
                time_sleep(float(hold.get("seconds", 0.0)))
            # The atomic publish: readers switch to the fully-built session.
            self._session = session
            report = SwapReport(
                step=delta.step,
                mode=step.mode,
                version=new_version,
                retrained=retrain,
                dirty_count=-1 if dirty is None else int(np.asarray(dirty).size),
                cache_carried=carried,
                condense_seconds=step.condense_seconds,
                train_seconds=train_seconds,
                swap_seconds=perf_counter() - swap_start,
            )
            self.swap_history.append(report)
            return report

    def adopt_version(self, version: int) -> None:
        """Align the version counter with externally recorded history.

        WAL recovery uses this after warm-starting from a snapshot: the
        snapshot records the version it was taken at, and adopting it (and
        re-stamping the live session) makes the replayed deltas land on the
        exact version numbers the pre-crash process acknowledged.
        """
        with self._swap_lock:
            self._version = int(version)
            if self._session is not None:
                self._session.version = int(version)

    # ------------------------------------------------------------------ #
    def export_bundle(self, *, metadata: dict | None = None) -> ModelBundle:
        """Snapshot the current model + condensed graph as a bundle."""
        if self._model is None or self._condensed is None:
            raise ServingError("controller not started: call start() first")
        merged = {"version": self._version, **(metadata or {})}
        return ModelBundle.from_model(
            self.model_name, self._model, self._condensed, metadata=merged
        )

    @property
    def stats(self) -> dict[str, object]:
        """Controller-level counters for the ``/stats`` endpoint."""
        memo = self.incremental.selection_memo.stats
        return {
            "version": self._version,
            "swaps": len(self.swap_history),
            "retrains": sum(1 for r in self.swap_history if r.retrained),
            "canary_evaluations": len(self.canary_history),
            "canary_rejections": self.canary_rejections,
            "coverage_memo": dict(memo),
        }
