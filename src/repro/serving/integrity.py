"""Published-artifact integrity: per-file SHA-256 manifests and last-good scan.

A published version directory is only trustworthy if every byte in it is the
byte the publisher wrote: a truncated ``logits.npy`` memory-maps happily and
serves garbage labels with a straight face.  This module makes corruption
*detectable* — every publish writes a ``manifest.json`` with per-file SHA-256
digests **before** the ``meta.json`` completion marker — and *survivable* —
loaders verify the manifest and fall back to the newest version that still
verifies (:func:`last_good_version`) instead of serving a corrupt one.

It is shared by every artifact path in the serving tier: the coordinator's
publish (:func:`repro.serving.replicated.pool.publish_version` writes and
self-verifies manifests), worker session loads
(:func:`repro.serving.replicated.pool.published_session` verifies before
mmap), and WAL snapshot records (which embed :func:`file_digest` digests that
replay verifies before trusting a snapshot).

Two fault sites live in the publish path so corruption is deterministically
injectable: ``publish.corrupt_file`` flips bytes in a freshly published file
after its digest was recorded, and ``publish.truncate_manifest`` tears the
manifest itself.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import IntegrityError, ServingError

__all__ = [
    "MANIFEST_NAME",
    "file_digest",
    "write_manifest",
    "read_manifest",
    "verify_manifest",
    "verify_version_dir",
    "last_good_version",
    "sync_dir",
]

#: manifest filename inside a published version directory
MANIFEST_NAME = "manifest.json"

#: files excluded from the manifest: the manifest itself, and ``meta.json``
#: which is the publish-completion marker written *after* the manifest
_UNLISTED = (MANIFEST_NAME, "meta.json")

_CHUNK = 1 << 20


def file_digest(path: Path | str) -> str:
    """SHA-256 hex digest of ``path``, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def sync_dir(path: Path | str) -> None:
    """fsync a directory so a just-``os.replace``'d entry survives power loss.

    ``os.replace`` makes the rename atomic against *process* death, but the
    directory entry itself lives in the parent's data blocks — without a
    directory fsync a power cut can roll the rename back.  Best effort on
    platforms that refuse ``O_DIRECTORY`` opens or directory fsync.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def _listed_files(vdir: Path) -> list[Path]:
    files = []
    for path in sorted(vdir.rglob("*")):
        if path.is_file() and path.name not in _UNLISTED:
            files.append(path)
    return files


def write_manifest(vdir: Path | str) -> dict:
    """Digest every payload file under ``vdir`` and write ``manifest.json``.

    Must run *before* the ``meta.json`` completion marker is written: a
    version directory with meta but no (valid) manifest is indistinguishable
    from tampering and is refused by :func:`verify_version_dir`.  The
    manifest is written via tmp + ``os.replace`` + fsync so it is itself
    atomic, then the directory is fsynced.
    """
    vdir = Path(vdir)
    files = {
        path.relative_to(vdir).as_posix(): file_digest(path)
        for path in _listed_files(vdir)
    }
    manifest = {"algorithm": "sha256", "files": files}
    target = vdir / MANIFEST_NAME
    tmp = target.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    sync_dir(vdir)
    return manifest


def read_manifest(vdir: Path | str) -> dict:
    """Parse ``manifest.json`` under ``vdir``; :class:`IntegrityError` if bad."""
    path = Path(vdir) / MANIFEST_NAME
    if not path.is_file():
        raise IntegrityError(f"no manifest in version dir: {vdir}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise IntegrityError(f"unreadable manifest {path}: {exc}") from exc
    if not isinstance(manifest, dict) or not isinstance(manifest.get("files"), dict):
        raise IntegrityError(f"malformed manifest {path}")
    return manifest


def verify_manifest(vdir: Path | str) -> dict:
    """Verify every file listed in ``vdir``'s manifest against its digest.

    Raises :class:`IntegrityError` naming each missing or mismatched file;
    returns the parsed manifest on success.  Files *not* listed (added after
    publish) do not fail verification — the manifest pins what the publisher
    wrote, not the directory's closure.
    """
    vdir = Path(vdir)
    manifest = read_manifest(vdir)
    bad: list[str] = []
    for rel, expected in sorted(manifest["files"].items()):
        path = vdir / rel
        if not path.is_file():
            bad.append(f"{rel}: missing")
        elif file_digest(path) != expected:
            bad.append(f"{rel}: digest mismatch")
    if bad:
        raise IntegrityError(f"version dir {vdir} failed verification: {'; '.join(bad)}")
    return manifest


def verify_version_dir(vdir: Path | str) -> dict:
    """Full trust check for a published version dir: complete AND verified.

    ``meta.json`` present (the publish completed) and every manifest-listed
    file digest-matches.  This is what loaders call before mmap'ing.
    """
    vdir = Path(vdir)
    if not (vdir / "meta.json").is_file():
        raise IntegrityError(f"incomplete publish (no meta.json): {vdir}")
    return verify_manifest(vdir)


def last_good_version(
    root: Path | str, *, below: int | None = None, exclude: tuple = ()
) -> tuple[int, Path]:
    """Newest published version under ``root`` that passes verification.

    Scans ``<root>/versions/v*`` newest-first, skipping versions in
    ``exclude`` and (when ``below`` is given) any version ``>= below``.
    Raises :class:`ServingError` when nothing verifiable remains — at that
    point there is genuinely nothing safe to serve.
    """
    versions_dir = Path(root) / "versions"
    candidates: list[tuple[int, Path]] = []
    if versions_dir.is_dir():
        for entry in versions_dir.iterdir():
            if entry.is_dir() and entry.name.startswith("v"):
                try:
                    number = int(entry.name[1:])
                except ValueError:
                    continue
                candidates.append((number, entry))
    excluded = {int(v) for v in exclude}
    for number, vdir in sorted(candidates, reverse=True):
        if number in excluded or (below is not None and number >= below):
            continue
        try:
            verify_version_dir(vdir)
        except IntegrityError:
            continue
        return number, vdir
    raise ServingError(f"no verifiable published version under {root}")
