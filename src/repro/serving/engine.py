"""The micro-batched prediction engine.

:class:`InferenceSession` is an **immutable snapshot** of one deployable
model epoch: at construction it pre-computes the propagated meta-path
features of every target node exactly once (the expensive sparse matmuls a
naive server would redo per request) and runs one full-batch forward pass —
the same full-batch forward training and evaluation use — caching the
resulting logits.  Serving a request is then a vectorised row-gather +
``argmax`` over the cached logits, which makes batched prediction
**byte-identical** to one-at-a-time prediction by construction: both paths
read the same pre-computed rows, there is no per-batch floating-point
re-association to worry about.

On top sits a small LRU label cache (:class:`LRUCache`): hot nodes skip
even the gather.  Because a session is immutable, the cache can be *carried
across hot-swaps*: when the controller proves the model unchanged, only the
entries in the delta's dirty set are invalidated (see
:mod:`repro.serving.hotswap` for the exact contract).

Sessions are cheap to throw away — the hot-swap path builds a fresh one per
delta and atomically replaces the reference.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ServingError
from repro.hetero.graph import HeteroGraph
from repro.models.base import HGNNClassifier
from repro.nn.autograd import no_grad

__all__ = ["LRUCache", "InferenceSession"]


class LRUCache:
    """Thread-safe least-recently-used ``node id -> label`` cache.

    ``capacity <= 0`` disables the cache entirely (every lookup misses),
    which the benchmarks use to measure the uncached engine.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised lookup: ``(labels, found_mask)`` aligned with ``ids``.

        Missing ids get label ``-1`` and ``found_mask`` False.
        """
        labels = np.full(ids.shape, -1, dtype=np.int64)
        found = np.zeros(ids.shape, dtype=bool)
        if self.capacity <= 0:
            self.misses += int(ids.size)
            return labels, found
        with self._lock:
            entries = self._entries
            for position, node in enumerate(ids.tolist()):
                value = entries.get(node)
                if value is not None:
                    entries.move_to_end(node)
                    labels[position] = value
                    found[position] = True
        hit_count = int(found.sum())
        self.hits += hit_count
        self.misses += int(ids.size) - hit_count
        return labels, found

    def store(self, ids: np.ndarray, labels: np.ndarray) -> None:
        """Insert ``id -> label`` pairs, evicting least-recently-used."""
        if self.capacity <= 0:
            return
        with self._lock:
            entries = self._entries
            for node, label in zip(ids.tolist(), labels.tolist()):
                entries[node] = int(label)
                entries.move_to_end(node)
            while len(entries) > self.capacity:
                entries.popitem(last=False)

    def invalidate(self, ids: Iterable[int]) -> int:
        """Drop the given node ids; returns how many entries were removed."""
        removed = 0
        with self._lock:
            for node in ids:
                if self._entries.pop(int(node), None) is not None:
                    removed += 1
        return removed

    def adopt(self, other: "LRUCache", *, drop: np.ndarray | None = None) -> int:
        """Copy ``other``'s entries (minus ``drop``) into this empty cache.

        Used by the hot-swap path to carry a warm cache across sessions.
        Returns the number of entries carried over.
        """
        if self.capacity <= 0:
            return 0
        dropped = set(np.asarray(drop, dtype=np.int64).tolist()) if drop is not None else set()
        with other._lock:
            snapshot = list(other._entries.items())
        with self._lock:
            for node, label in snapshot:
                if node not in dropped:
                    self._entries[node] = label
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._entries)}


class InferenceSession:
    """One immutable model epoch: pre-computed features + logits + cache.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.models.base.HGNNClassifier`.
    graph:
        The graph predictions are answered on (typically the live *full*
        graph, per the paper's train-on-condensed / serve-on-full protocol).
    version:
        Monotonic epoch counter stamped on every response.
    cache_size:
        LRU label-cache capacity (``0`` disables it).
    context:
        Optional :class:`~repro.core.context.CondensationContext` matching
        ``graph``; when compatible, feature propagation reuses its memoized
        blocks instead of recomputing the sparse matmuls.
    """

    def __init__(
        self,
        model: HGNNClassifier,
        graph: HeteroGraph,
        *,
        version: int = 0,
        cache_size: int = 4096,
        context=None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.version = int(version)
        self.cache = LRUCache(cache_size)
        module = model._require_fitted()
        start = perf_counter()
        features = model.prepare_features(graph, context=context)
        inputs = model._to_tensors(features)
        module.eval()
        with no_grad():
            logits = module(inputs).numpy()
        self.precompute_seconds = perf_counter() - start
        logits = np.ascontiguousarray(logits)
        logits.setflags(write=False)
        self._logits = logits
        self.requests = 0
        self.batches = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_logits(
        cls,
        logits: np.ndarray,
        *,
        version: int = 0,
        cache_size: int = 4096,
    ) -> "InferenceSession":
        """Build a session directly from pre-computed logits.

        This is how replicated worker processes serve: the coordinator runs
        the forward pass once, publishes the logits as a raw ``.npy``, and
        every worker opens them with ``np.load(..., mmap_mode="r")`` — the
        returned session answers :meth:`predict` from those rows without
        ever holding a model or graph.  A read-only ``np.memmap`` is kept
        as-is (the kernel shares its pages across the pool); any other
        array is copied to a contiguous read-only buffer.
        """
        logits = np.asanyarray(logits)
        if logits.ndim != 2:
            raise ServingError(
                f"logits must be a (targets, classes) matrix, got shape {logits.shape}"
            )
        session = cls.__new__(cls)
        session.model = None
        session.graph = None
        session.version = int(version)
        session.cache = LRUCache(cache_size)
        session.precompute_seconds = 0.0
        if not isinstance(logits, np.memmap):
            logits = np.ascontiguousarray(logits)
            logits.setflags(write=False)
        session._logits = logits
        session.requests = 0
        session.batches = 0
        return session

    @property
    def num_targets(self) -> int:
        """How many target nodes this session can answer for."""
        return int(self._logits.shape[0])

    @property
    def num_classes(self) -> int:
        """Number of classes in the cached logits."""
        return int(self._logits.shape[1])

    def logits(self, node_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Raw logit rows for ``node_ids`` (copy; for verification/debug)."""
        return self._logits[self._validated(node_ids)].copy()

    def _validated(self, node_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        ids = np.asarray(node_ids, dtype=np.int64).ravel()
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_targets):
            raise ServingError(
                f"node id out of range: valid ids are 0..{self.num_targets - 1}"
            )
        return ids

    # ------------------------------------------------------------------ #
    def predict(self, node_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Predicted class label per requested node (vectorised).

        A batch of ``k`` ids costs one cache lookup, one row-gather and one
        ``argmax`` over the missing rows — identical results to ``k``
        single-id calls (the byte-identity gate of
        ``benchmarks/bench_serving.py`` asserts exactly that).
        """
        ids = self._validated(node_ids)
        self.requests += int(ids.size)
        self.batches += 1
        labels, found = self.cache.lookup(ids)
        if not found.all():
            miss = ~found
            miss_ids = ids[miss]
            computed = np.argmax(self._logits[miss_ids], axis=-1).astype(np.int64)
            labels[miss] = computed
            self.cache.store(miss_ids, computed)
        return labels

    def predict_one(self, node_id: int) -> int:
        """Single-node convenience wrapper around :meth:`predict`."""
        return int(self.predict(np.asarray([node_id]))[0])

    def argmax_labels(self, node_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Labels straight from the logit rows, bypassing the LRU cache.

        The canary evaluator compares candidate and previous sessions with
        this: it must not warm (or trust) either session's cache, because a
        canary probe is a *side-channel* read — the serving stats and cache
        contents should be indistinguishable from a canary-less deploy.
        """
        ids = self._validated(node_ids)
        return np.argmax(self._logits[ids], axis=-1).astype(np.int64)

    @property
    def stats(self) -> dict[str, object]:
        """Counters for the ``/stats`` endpoint and the benchmarks."""
        return {
            "version": self.version,
            "targets": self.num_targets,
            "requests": self.requests,
            "batches": self.batches,
            "precompute_seconds": round(self.precompute_seconds, 6),
            "cache": self.cache.stats,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InferenceSession(version={self.version}, targets={self.num_targets}, "
            f"classes={self.num_classes})"
        )
