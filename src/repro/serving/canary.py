"""Canary-gated model swaps: score a candidate before anyone can see it.

A retrain that *degrades* the model is worse than no retrain at all — the
old version was serving correct answers, and an unconditional publish
replaces them with worse ones on every replica at once.  This module is the
gate between "the candidate session exists" and "the candidate session is
the session": a pinned canary query set is scored on every swap, and a
candidate that fails is thrown away while the previous version keeps
answering.

Checks (each independently recorded in the :class:`CanaryReport`):

``finite``
    Every canary logit row is finite.  A NaN/Inf row is a training blow-up
    that ``argmax`` would happily launder into a confident-looking label.
``consistency``
    On canary ids *outside* the delta's dirty set — nodes whose inputs did
    not change — the candidate must agree with the previous version on at
    least ``min_consistency`` of predictions.  Dirty ids are excluded
    because changing their labels is the point of the swap.
``accuracy``
    Optional floor on canary-set accuracy against graph labels, evaluated
    only when the candidate session still holds its graph (coordinator-side
    sessions do; mmap'd worker sessions do not).

The ``canary.force_reject`` fault site lets tests and the bench chaos phase
drive a rejection deterministically without degrading a real model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.utils import faults

__all__ = ["CanaryConfig", "CanaryReport", "pin_canary_ids", "evaluate_candidate"]


@dataclass(frozen=True)
class CanaryConfig:
    """Tuning knobs for the swap gate.

    ``size`` canary ids are pinned once per controller (seeded, so replicas
    pin the same set); ``min_consistency`` is the fraction of *clean* canary
    ids whose predictions must survive the swap; ``accuracy_floor`` is
    ``None`` to skip the label check.
    """

    size: int = 64
    min_consistency: float = 0.98
    accuracy_floor: float | None = None
    check_finite: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"canary size must be positive, got {self.size}")
        if not 0.0 <= self.min_consistency <= 1.0:
            raise ConfigurationError(
                f"min_consistency must be in [0, 1], got {self.min_consistency}"
            )
        if self.accuracy_floor is not None and not 0.0 <= self.accuracy_floor <= 1.0:
            raise ConfigurationError(
                f"accuracy_floor must be in [0, 1], got {self.accuracy_floor}"
            )


@dataclass
class CanaryReport:
    """Outcome of one canary evaluation, JSON-safe via :meth:`to_dict`."""

    passed: bool = True
    canary_ids: int = 0
    clean_ids: int = 0
    finite: bool | None = None
    consistency: float | None = None
    accuracy: float | None = None
    reasons: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "passed": bool(self.passed),
            "canary_ids": int(self.canary_ids),
            "clean_ids": int(self.clean_ids),
            "finite": self.finite,
            "consistency": None if self.consistency is None else round(self.consistency, 6),
            "accuracy": None if self.accuracy is None else round(self.accuracy, 6),
            "reasons": list(self.reasons),
        }


def pin_canary_ids(num_targets: int, *, size: int, seed: int = 0) -> np.ndarray:
    """Deterministic canary id sample for a target pool of ``num_targets``.

    Sorted, without replacement, at most ``num_targets`` ids.  Pinned once
    at controller start so every evaluation (and every replica with the same
    seed) probes the same nodes; ids stay valid as the pool grows because
    target pools only ever extend.
    """
    count = min(int(size), int(num_targets))
    rng = np.random.default_rng(int(seed))
    return np.sort(rng.choice(num_targets, size=count, replace=False)).astype(np.int64)


def _graph_accuracy(session, ids: np.ndarray) -> float | None:
    """Canary accuracy vs graph labels, or ``None`` when labels are absent."""
    graph = getattr(session, "graph", None)
    if graph is None:
        return None
    try:
        labels = np.asarray(graph.labels, dtype=np.int64)
    except (AttributeError, TypeError, ValueError):
        return None
    ids = ids[ids < labels.shape[0]]
    if ids.size == 0:
        return None
    truth = labels[ids]
    known = truth >= 0  # unlabeled nodes can't vote
    if not known.any():
        return None
    predicted = session.argmax_labels(ids[known])
    return float(np.mean(predicted == truth[known]))


def evaluate_candidate(
    candidate,
    previous,
    canary_ids: np.ndarray,
    *,
    dirty: np.ndarray | None = None,
    config: CanaryConfig,
) -> CanaryReport:
    """Score ``candidate`` against ``previous`` on the pinned canary set.

    ``previous`` may be ``None`` (first deploy: only the finite/accuracy
    checks apply).  ``dirty`` is the delta's dirty-target set; dirty canary
    ids are excluded from the consistency vote.  Never mutates either
    session's cache.
    """
    ids = np.asarray(canary_ids, dtype=np.int64)
    ids = ids[ids < candidate.num_targets]
    report = CanaryReport(canary_ids=int(ids.size))

    if config.check_finite:
        rows = np.asarray(candidate._logits[ids], dtype=np.float64)
        report.finite = bool(np.isfinite(rows).all())
        if not report.finite:
            report.passed = False
            report.reasons.append("non-finite logits on canary ids")

    clean = ids
    if dirty is not None and len(dirty):
        clean = ids[~np.isin(ids, np.asarray(dirty, dtype=np.int64))]
    if previous is not None:
        clean = clean[clean < previous.num_targets]
    report.clean_ids = int(clean.size)
    if previous is not None and clean.size:
        agree = candidate.argmax_labels(clean) == previous.argmax_labels(clean)
        report.consistency = float(np.mean(agree))
        if report.consistency < config.min_consistency:
            report.passed = False
            report.reasons.append(
                f"consistency {report.consistency:.4f} < floor {config.min_consistency}"
            )

    if config.accuracy_floor is not None:
        report.accuracy = _graph_accuracy(candidate, ids)
        if report.accuracy is not None and report.accuracy < config.accuracy_floor:
            report.passed = False
            report.reasons.append(
                f"accuracy {report.accuracy:.4f} < floor {config.accuracy_floor}"
            )

    if faults.fire("canary.force_reject") is not None:
        report.passed = False
        report.reasons.append("injected rejection (canary.force_reject)")
    return report
