"""Stdlib-only asyncio HTTP endpoint over a :class:`ServingController`.

``python -m repro serve`` starts this server.  The protocol is a minimal
but real HTTP/1.1 with keep-alive and JSON bodies:

``GET /healthz``
    ``{"status": "ok", "version": N, "targets": M}`` — liveness probe.
``GET /stats``
    Engine, batcher and controller counters plus a latency summary
    (:func:`repro.evaluation.timing.summarize_latencies`).
``POST /predict``  body ``{"nodes": [id, ...]}``
    ``{"labels": [...], "version": N}``.  Requests are **coalesced**: the
    handler enqueues the ids and awaits a shared
    :class:`MicroBatcher`, which drains the queue every few milliseconds
    (or once ``max_batch`` ids are pending) and answers the whole batch
    with one vectorised :meth:`~repro.serving.engine.InferenceSession.predict`
    call.  Each response is stamped with the session version that served it.
``POST /delta``  body: :meth:`repro.streaming.delta.GraphDelta.to_payload`
    Applies the delta through the controller's hot-swap path **in a worker
    thread** — the event loop keeps answering ``/predict`` from the live
    session for the whole duration — and returns the swap report.  Deltas
    are applied one at a time (the controller serialises swaps).
``GET /metrics``
    The same counters in Prometheus text format (see
    :mod:`repro.serving.replicated.metrics` for the exposition format); in
    the replicated tier the page aggregates every process of the pool.

Request bodies are bounded: a ``Content-Length`` beyond ``max_body_bytes``
is answered with ``413`` and a malformed or negative one with ``400`` —
both without reading the body, so an abusive client cannot make the server
buffer unbounded data or hang the connection.  When an admission capacity
is configured, ``/predict`` requests beyond it are shed with ``429``.

Zero-downtime is structural: the batcher always reads the controller's
current session *once per batch*, and the controller publishes a fully
built session with a single attribute store, so every request is answered
by exactly one consistent session — the old one or the new one.

The low-level HTTP helpers (:func:`read_http_request`,
:func:`write_http_response`) are shared with the replicated worker pool
(:mod:`repro.serving.replicated.pool`), which speaks the same protocol
from its own processes.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter

import numpy as np

from repro import obs
from repro.errors import CanaryRejectedError, ReproError, ServingError
from repro.evaluation.timing import summarize_latencies
from repro.obs.propagate import TRACE_HEADER, TraceContext, stamp_delta
from repro.serving.hotswap import ServingController
from repro.streaming.delta import GraphDelta

__all__ = [
    "HttpRequestError",
    "MicroBatcher",
    "ServingServer",
    "read_http_request",
    "write_http_response",
]

DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpRequestError(Exception):
    """A request that must be answered with an error *before* its body is read.

    Carries the HTTP status to send; the connection is closed afterwards
    because the stream position is no longer trustworthy.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


async def read_http_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
):
    """Parse one HTTP/1.1 request: ``(method, path, body, keep_alive, trace)``.

    ``trace`` is the raw ``x-repro-trace`` header value (or ``None``) — the
    cross-process trace-context carrier decoded by
    :func:`repro.obs.propagate.TraceContext.from_header`.

    Returns ``None`` on a cleanly closed or garbled connection, raises
    :class:`HttpRequestError` for requests that deserve an error response:
    ``400`` for a malformed or negative ``Content-Length``, ``413`` for a
    declared body larger than ``max_body_bytes`` (the body is *not* read —
    the bound is enforced on the declaration, before any buffering).
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _ = line.decode("latin-1").split(" ", 2)
    except ValueError:
        return None
    content_length = 0
    keep_alive = True
    trace = None
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        name = name.strip().lower()
        if name == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise HttpRequestError(
                    400, f"malformed Content-Length: {value.strip()!r}"
                ) from None
            if content_length < 0:
                raise HttpRequestError(400, "negative Content-Length")
        elif name == "connection" and value.strip().lower() == "close":
            keep_alive = False
        elif name == TRACE_HEADER:
            trace = value.strip() or None
    if content_length > max_body_bytes:
        raise HttpRequestError(
            413,
            f"request body of {content_length} bytes exceeds the "
            f"{max_body_bytes}-byte limit",
        )
    body = await reader.readexactly(content_length) if content_length else b""
    return method.upper(), path, body, keep_alive, trace


async def write_http_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict | str | bytes,
    keep_alive: bool = True,
) -> None:
    """Send one response; dict payloads are JSON, str/bytes go as plain text.

    Backpressure statuses (``429``/``503``) whose payload carries
    ``retry_after_seconds`` also get a ``Retry-After`` header, so plain HTTP
    clients see the pacing hint without parsing the body.
    """
    retry_after = None
    if isinstance(payload, dict):
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
        if status in (429, 503) and "retry_after_seconds" in payload:
            retry_after = max(1, int(payload["retry_after_seconds"]))
    else:
        body = payload.encode("utf-8") if isinstance(payload, str) else payload
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        + (f"Retry-After: {retry_after}\r\n" if retry_after is not None else "")
        + f"Connection: {connection}\r\n\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


class MicroBatcher:
    """Coalesces concurrent prediction requests into vectorised batches.

    Parameters
    ----------
    get_session:
        Zero-argument callable returning the current
        :class:`~repro.serving.engine.InferenceSession` (read once per
        drained batch, so a whole batch is answered by one session).
    max_batch:
        Flush once this many node ids are pending.
    window_seconds:
        Flush after this long even when the batch is not full (the latency
        bound a mostly-idle server adds to a lone request).
    """

    def __init__(
        self,
        get_session,
        *,
        max_batch: int = 256,
        window_seconds: float = 0.002,
    ) -> None:
        self.get_session = get_session
        self.max_batch = int(max_batch)
        self.window_seconds = float(window_seconds)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self.batches_served = 0
        self.requests_served = 0

    def start(self) -> None:
        """Spawn the drain loop on the running event loop."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Cancel the drain loop."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def submit(self, node_ids: np.ndarray) -> tuple[np.ndarray, int]:
        """Enqueue ``node_ids``; resolves to ``(labels, session version)``."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((node_ids, future))
        return await future

    async def _drain(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            pending = int(first[0].size)
            deadline = perf_counter() + self.window_seconds
            while pending < self.max_batch:
                remaining = deadline - perf_counter()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                batch.append(item)
                pending += int(item[0].size)
            ids = np.concatenate([item[0] for item in batch])
            try:
                with obs.span(
                    "serve.batch_predict", requests=len(batch), ids=int(ids.size)
                ):
                    session = self.get_session()
                    labels = session.predict(ids)
                    version = session.version
            except Exception:
                # Isolate the offender: retry each request on its own so a
                # single bad batch member cannot fail its window-mates.
                for request_ids, future in batch:
                    try:
                        session = self.get_session()
                        result = (session.predict(request_ids), session.version)
                    except Exception as exc:
                        if not future.done():
                            future.set_exception(exc)
                    else:
                        if not future.done():
                            future.set_result(result)
                continue
            self.batches_served += 1
            self.requests_served += len(batch)
            cursor = 0
            for request_ids, future in batch:
                span = int(request_ids.size)
                if not future.done():
                    future.set_result((labels[cursor : cursor + span], version))
                cursor += span

    @property
    def stats(self) -> dict[str, object]:
        """Batching effectiveness counters."""
        served = self.batches_served
        return {
            "batches": served,
            "requests": self.requests_served,
            "mean_requests_per_batch": (
                round(self.requests_served / served, 3) if served else 0.0
            ),
            "max_batch": self.max_batch,
            "window_seconds": self.window_seconds,
        }


class ServingServer:
    """Asyncio TCP server speaking minimal HTTP/1.1 over a controller."""

    def __init__(
        self,
        controller: ServingController,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        max_batch: int = 256,
        batch_window_seconds: float = 0.002,
        on_swap=None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        admission_capacity: int = 0,
        metrics=None,
        sock=None,
    ) -> None:
        from repro.serving.replicated.admission import AdmissionGate
        from repro.serving.replicated.metrics import MetricsBoard

        self.controller = controller
        self.host = host
        self.port = int(port)
        #: optional callback invoked (in the swap worker thread) after every
        #: completed hot-swap — ``python -m repro serve`` persists bundles here
        self.on_swap = on_swap
        self.max_body_bytes = int(max_body_bytes)
        #: this process's row of the (possibly shared) metrics board
        if metrics is None:
            self._board = MetricsBoard.in_memory()
            self.metrics = self._board.slot(0)
        else:
            self._board = metrics.board
            self.metrics = metrics
        self.admission = AdmissionGate(admission_capacity, metrics=self.metrics)
        #: optional pre-bound listening socket (the replicated tier binds one
        #: per process with SO_REUSEPORT so the kernel load-balances accepts)
        self.sock = sock
        self.batcher = MicroBatcher(
            # Resolve self.controller dynamically: the replicated tier
            # *replaces* the controller after a quarantine rebuild, and the
            # batcher must follow it rather than pin the constructor's one.
            lambda: self.controller.session,
            max_batch=max_batch,
            window_seconds=batch_window_seconds,
        )
        self._server: asyncio.AbstractServer | None = None
        self._swap_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-swap"
        )
        self._latencies: list[float] = []
        self.errors = 0

    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``."""
        import os

        self.batcher.start()
        if self.sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self.sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], int(sockname[1])
        self.metrics.mark_up(pid=os.getpid(), version=self.controller.version)
        # Bridge finished spans into the metrics board (repro_span_seconds);
        # hooked per-server so the /metrics page reflects this process.
        tracer = obs.active()
        if tracer is not None and self._observe_span not in tracer.on_finish:
            tracer.on_finish.append(self._observe_span)
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Run until cancelled."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, drain the batcher, shut the swap worker down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.stop()
        # shutdown(wait=True) joins any in-flight swap; do the join in a
        # thread so a slow commit can't freeze other tasks on this loop.
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self._swap_pool.shutdown(wait=True)
        )
        tracer = obs.active()
        if tracer is not None and self._observe_span in tracer.on_finish:
            tracer.on_finish.remove(self._observe_span)
        self.metrics.mark_down()

    def _observe_span(self, span) -> None:
        """on_finish hook: feed span durations into the metrics board."""
        self.metrics.observe_span(span.name, span.duration_s)

    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_http_request(
                        reader, max_body_bytes=self.max_body_bytes
                    )
                except HttpRequestError as exc:
                    # The body was never read, so the stream position is
                    # unknown: answer and close instead of hanging.
                    self.errors += 1
                    self.metrics.observe_request("other")
                    self.metrics.observe_response("other", exc.status)
                    await write_http_response(
                        writer, exc.status, {"error": str(exc)}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                method, path, body, keep_alive, trace = request
                status, payload = await self._route(method, path, body, trace)
                await write_http_response(writer, status, payload, keep_alive)
                if status >= 500 or not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------ #
    @staticmethod
    def _endpoint_of(path: str) -> str:
        name = path.lstrip("/") or "other"
        return name if name in ("predict", "delta", "healthz", "stats", "metrics") else "other"

    async def _route(
        self, method: str, path: str, body: bytes, trace: str | None = None
    ) -> tuple[int, dict | str]:
        start = perf_counter()
        endpoint = self._endpoint_of(path)
        self.metrics.observe_request(endpoint)
        self.metrics.heartbeat()
        if endpoint in ("predict", "delta") and obs.active() is not None:
            # Attach the request span under the remote caller's span when the
            # client sent an x-repro-trace header (worker delta forwarding,
            # traced benchmarks); otherwise under this process's root.
            remote = TraceContext.from_header(trace) if trace else None
            with obs.span(
                f"serve.{endpoint}",
                _parent=remote.parent_id if remote is not None else None,
                bytes=len(body),
            ) as handle:
                status, payload = await self._dispatch(method, path, body, start)
                if handle is not None:
                    handle.attrs["status"] = int(status)
        else:
            status, payload = await self._dispatch(method, path, body, start)
        self.metrics.observe_response(
            endpoint,
            status,
            perf_counter() - start if endpoint == "predict" else None,
        )
        return status, payload

    async def _dispatch(
        self, method: str, path: str, body: bytes, start: float
    ) -> tuple[int, dict | str]:
        try:
            if method == "GET" and path == "/healthz":
                session = self.controller.session
                return 200, {
                    "status": "ok",
                    "version": session.version,
                    "targets": session.num_targets,
                }
            if method == "GET" and path == "/stats":
                return 200, self._stats_payload()
            if method == "GET" and path == "/metrics":
                from repro.serving.replicated.metrics import render_prometheus

                return 200, render_prometheus(self._board)
            if method == "POST" and path == "/predict":
                return await self._handle_predict(body, start)
            if method == "POST" and path == "/delta":
                return await self._handle_delta(body)
            return 404, {"error": f"no route for {method} {path}"}
        except CanaryRejectedError as exc:
            # Not a bad request: the delta was valid, the retrained candidate
            # failed the canary gate and was rolled back.  The previous
            # version is still answering.
            self.errors += 1
            return 422, {
                "error": str(exc),
                "rolled_back": True,
                "canary": dict(exc.report),
                "version": self.controller.version,
            }
        except ServingError as exc:
            self.errors += 1
            return 400, {"error": str(exc)}
        except ReproError as exc:
            self.errors += 1
            return 400, {"error": str(exc)}
        except Exception as exc:  # never kill the connection loop silently
            self.errors += 1
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _handle_predict(self, body: bytes, start: float) -> tuple[int, dict]:
        payload = _parse_json(body)
        nodes = payload.get("nodes")
        if not isinstance(nodes, list) or not nodes:
            raise ServingError("predict body must be {'nodes': [id, ...]}")
        try:
            ids = np.asarray(nodes, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ServingError(f"node ids must be integers: {exc}") from exc
        # Validate here, against the current session, so one bad request can
        # never poison the other requests coalesced into its micro-batch.
        # Safe across swaps: the id space only grows (removals tombstone).
        bound = self.controller.session.num_targets
        if ids.size and (ids.min() < 0 or ids.max() >= bound):
            raise ServingError(f"node id out of range: valid ids are 0..{bound - 1}")
        if not self.admission.try_enter():
            obs.event("serve.shed", depth=self.admission.depth)
            return 429, {
                "error": "admission queue full: retry with backoff",
                "depth": self.admission.depth,
            }
        try:
            labels, version = await self.batcher.submit(ids)
        finally:
            self.admission.leave()
        elapsed = perf_counter() - start
        self._latencies.append(elapsed)
        if len(self._latencies) > 100_000:
            del self._latencies[: len(self._latencies) // 2]
        return 200, {
            "labels": labels.tolist(),
            "version": version,
            "latency_ms": round(elapsed * 1e3, 3),
        }

    async def _handle_delta(self, body: bytes) -> tuple[int, dict]:
        payload = _parse_json(body)
        # Stamp the serve.delta span's context onto the delta metadata: it
        # rides to_payload() into the WAL, so replay spans correlate with
        # the commit that produced them.  No-op while tracing is disabled.
        delta = stamp_delta(GraphDelta.from_payload(payload))
        loop = asyncio.get_running_loop()

        def swap():
            report = self.controller.apply_delta(delta)
            if self.on_swap is not None:
                self.on_swap(report)
            return report

        # run_in_executor does not carry contextvars into the worker thread;
        # copy the context so swap spans stay children of serve.delta.
        call = contextvars.copy_context().run
        report = await loop.run_in_executor(self._swap_pool, call, swap)
        self.metrics.observe_swap(report.swap_seconds)
        self.metrics.set_version(report.version)
        return 200, {
            "step": report.step,
            "mode": report.mode,
            "version": report.version,
            "retrained": report.retrained,
            "dirty_count": report.dirty_count,
            "cache_carried": report.cache_carried,
            "condense_seconds": round(report.condense_seconds, 6),
            "train_seconds": round(report.train_seconds, 6),
            "swap_seconds": round(report.swap_seconds, 6),
        }

    def _stats_payload(self) -> dict:
        return {
            "session": self.controller.session.stats,
            "controller": self.controller.stats,
            "batcher": self.batcher.stats,
            "admission": self.admission.stats,
            "errors": self.errors,
            "latency": summarize_latencies(self._latencies),
        }


def _parse_json(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServingError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServingError("request body must be a JSON object")
    return payload
