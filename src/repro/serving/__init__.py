"""Online inference serving for condensed-graph models.

The paper's pitch is that a condensed graph is cheap enough to train and
*deploy* on; this package is the deployment layer.  It turns a condensed
graph kept fresh by :mod:`repro.streaming` into low-latency predictions:

* :mod:`repro.serving.artifacts` — :class:`ModelBundle` (one versioned
  ``.npz`` holding trained weights + propagation state + the condensed
  graph) and :class:`ModelStore` (an append-only, resumable bundle
  registry keyed like the runner's artifact store);
* :mod:`repro.serving.engine` — :class:`InferenceSession`, the
  micro-batched prediction engine: propagated features are pre-computed
  once per model epoch, batched prediction is byte-identical to
  one-at-a-time, and an LRU label cache absorbs hot nodes;
* :mod:`repro.serving.hotswap` — :class:`ServingController`, which applies
  :class:`~repro.streaming.delta.GraphDelta` s through the incremental
  condenser, retrains only when the condensed graph actually changed, and
  atomically swaps sessions with dirty-set-driven cache carry-over;
* :mod:`repro.serving.server` — a stdlib-only asyncio HTTP endpoint
  (``python -m repro serve``) that coalesces concurrent requests into
  vectorised batches and hot-swaps in the background with zero dropped
  requests;
* :mod:`repro.serving.integrity` — per-file SHA-256 manifests for every
  published artifact directory, verified before load with last-good
  fallback;
* :mod:`repro.serving.canary` — the swap gate: candidates are scored on a
  pinned canary query set and rejected (previous version keeps serving)
  when they regress.

``benchmarks/bench_serving.py`` gates the whole stack: batched == serial
byte-identity, a >=5x batched-over-unbatched throughput floor, and a
zero-error hot-swap under concurrent load.
"""

from repro.serving.artifacts import (
    BUNDLE_FORMAT,
    ModelBundle,
    ModelStore,
    load_bundle,
    save_bundle,
)
from repro.serving.canary import CanaryConfig, CanaryReport
from repro.serving.engine import InferenceSession, LRUCache
from repro.serving.hotswap import ServingController, SwapReport
from repro.serving.integrity import (
    last_good_version,
    verify_version_dir,
    write_manifest,
)
from repro.serving.server import MicroBatcher, ServingServer

__all__ = [
    "BUNDLE_FORMAT",
    "CanaryConfig",
    "CanaryReport",
    "InferenceSession",
    "LRUCache",
    "MicroBatcher",
    "ModelBundle",
    "ModelStore",
    "ServingController",
    "ServingServer",
    "SwapReport",
    "last_good_version",
    "load_bundle",
    "save_bundle",
    "verify_version_dir",
    "write_manifest",
]
