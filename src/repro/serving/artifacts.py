"""Model-bundle persistence: one versioned ``.npz`` per deployable model.

A *bundle* is everything the serving layer needs to answer predictions
without re-running condensation or training:

* the trained model's weights (``Module.state_dict`` arrays),
* its **propagation state** (:meth:`repro.models.base.HGNNClassifier.
  export_propagation_state`: hyper-parameter config, consumed feature keys
  and dimensions, class count),
* the condensed graph the weights were trained on (embedded with the
  :func:`repro.hetero.io.graph_to_arrays` codec under a ``graph__`` prefix),
* free-form provenance metadata (dataset, ratio, accuracy, stream step).

Bundles are written atomically (temp file + rename) so a reader never sees
a half-written archive, and carry a format version that is checked on load.

Two on-disk layouts share one logical format:

* ``layout="npz"`` (the cold-storage default) — one compressed ``.npz``
  archive, smallest on disk;
* ``layout="dir"`` — an *uncompressed* directory of raw ``.npy`` files plus
  a JSON header/manifest.  Compressed zip members cannot be memory-mapped,
  so this is the layout the replicated serving tier publishes: every worker
  process opens the same arrays with ``np.load(..., mmap_mode="r")`` and the
  kernel shares one physical copy of the pages across the whole pool.

:func:`load_bundle` auto-detects the layout (directory vs. archive), so
callers never need to know which one they were handed.

:class:`ModelStore` organises bundles on disk the same way the runner's
:class:`~repro.runner.cache.ArtifactStore` organises results: an
append-only JSONL index keyed by a caller-chosen stable key, latest record
wins, safe to resume after interruption.  Each ``put`` bumps the key's
revision and writes a new archive next to the index.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro import registry
from repro.errors import ServingError
from repro.hetero.graph import HeteroGraph
from repro.hetero.io import graph_from_arrays, graph_to_arrays, json_default
from repro.models.base import HGNNClassifier
from repro.runner.cache import ArtifactStore
from repro.serving.integrity import sync_dir

__all__ = ["ModelBundle", "ModelStore", "save_bundle", "load_bundle", "BUNDLE_FORMAT"]

#: bump when the archive layout changes incompatibly
BUNDLE_FORMAT = 1

_GRAPH_PREFIX = "graph__"
_WEIGHT_PREFIX = "weight__"


@dataclass
class ModelBundle:
    """A deployable (model, condensed graph) pair plus provenance."""

    model_name: str
    state: dict[str, object]
    weights: dict[str, np.ndarray]
    condensed: HeteroGraph
    metadata: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_model(
        cls,
        model_name: str,
        model: HGNNClassifier,
        condensed: HeteroGraph,
        *,
        metadata: dict[str, object] | None = None,
    ) -> "ModelBundle":
        """Capture a fitted ``model`` (and the graph it trained on)."""
        canonical = registry.models.canonical(model_name)
        module = model._require_fitted()
        return cls(
            model_name=canonical,
            state=model.export_propagation_state(),
            weights=module.state_dict(),
            condensed=condensed,
            metadata=dict(metadata or {}),
        )

    def build_model(self) -> HGNNClassifier:
        """Reconstruct the fitted classifier (byte-identical predictions)."""
        model_cls = registry.models.get(self.model_name)
        config = dict(self.state.get("config", {}))
        model = model_cls(**config)
        model.restore_state(self.state, self.weights)
        return model


def _bundle_header(bundle: ModelBundle) -> dict:
    return {
        "format": BUNDLE_FORMAT,
        "model": bundle.model_name,
        "state": bundle.state,
        "metadata": bundle.metadata,
    }


def _bundle_arrays(bundle: ModelBundle) -> dict[str, np.ndarray]:
    arrays: dict[str, np.ndarray] = {}
    for name, value in bundle.weights.items():
        arrays[f"{_WEIGHT_PREFIX}{name}"] = np.asarray(value, dtype=np.float64)
    arrays.update(graph_to_arrays(bundle.condensed, prefix=_GRAPH_PREFIX))
    return arrays


def _bundle_from_parts(
    path: Path, header: dict, data, files: list[str]
) -> ModelBundle:
    fmt = int(header.get("format", -1))
    if fmt > BUNDLE_FORMAT or fmt < 1:
        raise ServingError(
            f"bundle {path} has format {fmt}; this library supports "
            f"<= {BUNDLE_FORMAT}"
        )
    weights = {
        key[len(_WEIGHT_PREFIX) :]: data[key]
        for key in files
        if key.startswith(_WEIGHT_PREFIX)
    }
    condensed = graph_from_arrays(data, prefix=_GRAPH_PREFIX)
    return ModelBundle(
        model_name=str(header["model"]),
        state=dict(header["state"]),
        weights=weights,
        condensed=condensed,
        metadata=dict(header.get("metadata", {})),
    )


def _fsync_file(path: Path) -> None:
    """Force ``path``'s already-written bytes to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_bundle(
    bundle: ModelBundle, path: str | Path, *, layout: str = "npz"
) -> Path:
    """Write ``bundle`` to ``path`` atomically.

    ``layout="npz"`` (default) writes one compressed archive —
    the cold-storage format of :class:`ModelStore`.  ``layout="dir"``
    writes an uncompressed directory of raw ``.npy`` files that
    :func:`load_bundle` can open with ``mmap=True`` so many processes
    share one physical copy of the arrays.
    """
    path = Path(path)
    if layout == "dir":
        return _save_bundle_dir(bundle, path)
    if layout != "npz":
        raise ServingError(f"unknown bundle layout {layout!r}: use 'npz' or 'dir'")
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "bundle_json": np.frombuffer(
            json.dumps(
                _bundle_header(bundle), sort_keys=True, default=json_default
            ).encode("utf-8"),
            dtype=np.uint8,
        )
    }
    arrays.update(_bundle_arrays(bundle))
    # np.savez appends ".npz" to names lacking it, so the temp name keeps it.
    tmp = path.with_name(f".{path.stem}.tmp{os.getpid()}.npz")
    try:
        np.savez_compressed(tmp, **arrays)
        _fsync_file(tmp)
        os.replace(tmp, path)
        # The rename is atomic against process death but not power loss
        # until the directory entry itself is durable.
        sync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def _save_bundle_dir(bundle: ModelBundle, path: Path) -> Path:
    """Uncompressed directory layout: ``header.json`` + one ``.npy`` per array.

    Array keys (which may contain characters unsafe for filenames) are
    mapped to ``a0000.npy``-style names through the manifest inside
    ``header.json``.  The directory is staged under a temp name and
    committed with one ``os.replace`` — a reader either sees the whole
    bundle or none of it, never a partial write.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    try:
        arrays = _bundle_arrays(bundle)
        manifest: dict[str, str] = {}
        for index, key in enumerate(sorted(arrays)):
            filename = f"a{index:04d}.npy"
            manifest[key] = filename
            np.save(tmp / filename, np.ascontiguousarray(arrays[key]))
        header = dict(_bundle_header(bundle), manifest=manifest)
        (tmp / "header.json").write_text(
            json.dumps(header, sort_keys=True, indent=1, default=json_default)
        )
        # Flush file contents (and the staged directory's entries) to disk
        # before the rename, or a crash can atomically publish truncated
        # arrays — the same idiom as integrity.write_manifest.
        for staged in sorted(tmp.iterdir()):
            _fsync_file(staged)
        sync_dir(tmp)
        if path.exists():
            shutil.rmtree(path)
        os.replace(tmp, path)
        sync_dir(path.parent)
    finally:
        if tmp.exists():
            shutil.rmtree(tmp, ignore_errors=True)
    return path


class _DirArrays:
    """Lazy ``key -> array`` view over a directory-layout bundle."""

    def __init__(self, root: Path, manifest: dict[str, str], mmap: bool) -> None:
        self.root = root
        self.manifest = manifest
        self.mmap_mode = "r" if mmap else None

    @property
    def files(self) -> list[str]:
        return list(self.manifest)

    def __getitem__(self, key: str) -> np.ndarray:
        return np.load(
            self.root / self.manifest[key],
            mmap_mode=self.mmap_mode,
            allow_pickle=False,
        )


def load_bundle(path: str | Path, *, mmap: bool = False) -> ModelBundle:
    """Load a bundle written by :func:`save_bundle` (either layout).

    A directory is read as the uncompressed layout, anything else as the
    compressed archive.  With ``mmap=True`` a directory bundle's arrays are
    opened read-only with ``np.load(mmap_mode="r")`` — weights and condensed
    -graph arrays stay on disk and every process mapping them shares one
    page-cache copy.  ``mmap`` is ignored for compressed archives (zip
    members cannot be mapped).

    Raises :class:`~repro.errors.ServingError` on a missing file, a foreign
    archive, or a format version newer than this library understands.
    """
    path = Path(path)
    if path.is_dir():
        return _load_bundle_dir(path, mmap=mmap)
    if not path.exists():
        raise ServingError(f"model bundle {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as data:
            if "bundle_json" not in data.files:
                raise ServingError(f"{path} is not a model bundle (no header)")
            header = json.loads(bytes(data["bundle_json"]).decode("utf-8"))
            return _bundle_from_parts(path, header, data, list(data.files))
    except (BadZipFile, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise ServingError(f"failed to read model bundle {path}: {exc}") from exc


def _load_bundle_dir(path: Path, *, mmap: bool) -> ModelBundle:
    header_path = path / "header.json"
    if not header_path.exists():
        raise ServingError(f"{path} is not a model bundle (no header.json)")
    try:
        header = json.loads(header_path.read_text())
        manifest = {
            str(key): str(name) for key, name in dict(header["manifest"]).items()
        }
        data = _DirArrays(path, manifest, mmap)
        return _bundle_from_parts(path, header, data, data.files)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise ServingError(f"failed to read model bundle {path}: {exc}") from exc


class ModelStore:
    """Versioned on-disk registry of model bundles, keyed like the runner's store.

    Layout::

        <root>/artifacts.jsonl          # append-only index (ArtifactStore)
        <root>/bundles/<key>-r0001.npz  # one archive per revision

    ``put`` appends an index record ``{"key": ..., "cell": {...}, "result":
    {"path": ..., "revision": ...}}``; the latest record per key wins, so
    interrupted writes at worst leave an orphaned archive that is never
    referenced.

    Examples
    --------
    >>> import tempfile
    >>> store = ModelStore(tempfile.mkdtemp())
    >>> store.latest_record("missing") is None
    True
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.index = ArtifactStore(self.root)

    @property
    def bundle_dir(self) -> Path:
        """Directory holding the ``.npz`` archives."""
        return self.root / "bundles"

    def keys(self) -> set[str]:
        """Every key with at least one stored bundle."""
        return self.index.completed_keys()

    def latest_record(self, key: str) -> dict | None:
        """The newest index record for ``key`` (or ``None``)."""
        return self.index.get(key)

    def revision_of(self, key: str) -> int:
        """Latest stored revision of ``key`` (0 when absent)."""
        record = self.latest_record(key)
        if record is None:
            return 0
        result = record.get("result", {})
        return int(result.get("revision", 0)) if isinstance(result, dict) else 0

    def put(
        self,
        key: str,
        bundle: ModelBundle,
        *,
        elapsed_s: float = 0.0,
    ) -> dict:
        """Persist ``bundle`` as the next revision of ``key``."""
        revision = self.revision_of(key) + 1
        filename = f"{_safe_stem(key)}-r{revision:04d}.npz"
        path = save_bundle(bundle, self.bundle_dir / filename)
        return self.index.put(
            key,
            {
                "kind": "model-bundle",
                "model": bundle.model_name,
                "metadata": bundle.metadata,
            },
            {
                "path": str(path.relative_to(self.root)),
                "revision": revision,
                "num_weights": len(bundle.weights),
            },
            elapsed_s=elapsed_s,
        )

    def load(self, key: str) -> ModelBundle:
        """Load the latest revision of ``key``."""
        record = self.latest_record(key)
        if record is None:
            raise ServingError(
                f"no model bundle stored under key {key!r} in {self.root}"
            )
        result = record.get("result", {})
        return load_bundle(self.root / str(result.get("path", "")))

    def __contains__(self, key: str) -> bool:
        return self.latest_record(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelStore(root={str(self.root)!r}, keys={len(self.keys())})"


def _safe_stem(key: str) -> str:
    """Filesystem-safe archive stem for an arbitrary store key."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in key)[:80]
