"""Model-bundle persistence: one versioned ``.npz`` per deployable model.

A *bundle* is everything the serving layer needs to answer predictions
without re-running condensation or training:

* the trained model's weights (``Module.state_dict`` arrays),
* its **propagation state** (:meth:`repro.models.base.HGNNClassifier.
  export_propagation_state`: hyper-parameter config, consumed feature keys
  and dimensions, class count),
* the condensed graph the weights were trained on (embedded with the
  :func:`repro.hetero.io.graph_to_arrays` codec under a ``graph__`` prefix),
* free-form provenance metadata (dataset, ratio, accuracy, stream step).

Bundles are written atomically (temp file + rename) so a reader never sees
a half-written archive, and carry a format version that is checked on load.

:class:`ModelStore` organises bundles on disk the same way the runner's
:class:`~repro.runner.cache.ArtifactStore` organises results: an
append-only JSONL index keyed by a caller-chosen stable key, latest record
wins, safe to resume after interruption.  Each ``put`` bumps the key's
revision and writes a new archive next to the index.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro import registry
from repro.errors import ServingError
from repro.hetero.graph import HeteroGraph
from repro.hetero.io import graph_from_arrays, graph_to_arrays, json_default
from repro.models.base import HGNNClassifier
from repro.runner.cache import ArtifactStore

__all__ = ["ModelBundle", "ModelStore", "save_bundle", "load_bundle", "BUNDLE_FORMAT"]

#: bump when the archive layout changes incompatibly
BUNDLE_FORMAT = 1

_GRAPH_PREFIX = "graph__"
_WEIGHT_PREFIX = "weight__"


@dataclass
class ModelBundle:
    """A deployable (model, condensed graph) pair plus provenance."""

    model_name: str
    state: dict[str, object]
    weights: dict[str, np.ndarray]
    condensed: HeteroGraph
    metadata: dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_model(
        cls,
        model_name: str,
        model: HGNNClassifier,
        condensed: HeteroGraph,
        *,
        metadata: dict[str, object] | None = None,
    ) -> "ModelBundle":
        """Capture a fitted ``model`` (and the graph it trained on)."""
        canonical = registry.models.canonical(model_name)
        module = model._require_fitted()
        return cls(
            model_name=canonical,
            state=model.export_propagation_state(),
            weights=module.state_dict(),
            condensed=condensed,
            metadata=dict(metadata or {}),
        )

    def build_model(self) -> HGNNClassifier:
        """Reconstruct the fitted classifier (byte-identical predictions)."""
        model_cls = registry.models.get(self.model_name)
        config = dict(self.state.get("config", {}))
        model = model_cls(**config)
        model.restore_state(self.state, self.weights)
        return model


def save_bundle(bundle: ModelBundle, path: str | Path) -> Path:
    """Write ``bundle`` to ``path`` as one compressed ``.npz`` (atomic)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": BUNDLE_FORMAT,
        "model": bundle.model_name,
        "state": bundle.state,
        "metadata": bundle.metadata,
    }
    arrays: dict[str, np.ndarray] = {
        "bundle_json": np.frombuffer(
            json.dumps(header, sort_keys=True, default=json_default).encode("utf-8"),
            dtype=np.uint8,
        )
    }
    for name, value in bundle.weights.items():
        arrays[f"{_WEIGHT_PREFIX}{name}"] = np.asarray(value, dtype=np.float64)
    arrays.update(graph_to_arrays(bundle.condensed, prefix=_GRAPH_PREFIX))
    # np.savez appends ".npz" to names lacking it, so the temp name keeps it.
    tmp = path.with_name(f".{path.stem}.tmp{os.getpid()}.npz")
    try:
        np.savez_compressed(tmp, **arrays)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_bundle(path: str | Path) -> ModelBundle:
    """Load a bundle written by :func:`save_bundle`.

    Raises :class:`~repro.errors.ServingError` on a missing file, a foreign
    archive, or a format version newer than this library understands.
    """
    path = Path(path)
    if not path.exists():
        raise ServingError(f"model bundle {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as data:
            if "bundle_json" not in data.files:
                raise ServingError(f"{path} is not a model bundle (no header)")
            header = json.loads(bytes(data["bundle_json"]).decode("utf-8"))
            fmt = int(header.get("format", -1))
            if fmt > BUNDLE_FORMAT or fmt < 1:
                raise ServingError(
                    f"bundle {path} has format {fmt}; this library supports "
                    f"<= {BUNDLE_FORMAT}"
                )
            weights = {
                key[len(_WEIGHT_PREFIX) :]: data[key]
                for key in data.files
                if key.startswith(_WEIGHT_PREFIX)
            }
            condensed = graph_from_arrays(data, prefix=_GRAPH_PREFIX)
    except (BadZipFile, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise ServingError(f"failed to read model bundle {path}: {exc}") from exc
    return ModelBundle(
        model_name=str(header["model"]),
        state=dict(header["state"]),
        weights=weights,
        condensed=condensed,
        metadata=dict(header.get("metadata", {})),
    )


class ModelStore:
    """Versioned on-disk registry of model bundles, keyed like the runner's store.

    Layout::

        <root>/artifacts.jsonl          # append-only index (ArtifactStore)
        <root>/bundles/<key>-r0001.npz  # one archive per revision

    ``put`` appends an index record ``{"key": ..., "cell": {...}, "result":
    {"path": ..., "revision": ...}}``; the latest record per key wins, so
    interrupted writes at worst leave an orphaned archive that is never
    referenced.

    Examples
    --------
    >>> import tempfile
    >>> store = ModelStore(tempfile.mkdtemp())
    >>> store.latest_record("missing") is None
    True
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.index = ArtifactStore(self.root)

    @property
    def bundle_dir(self) -> Path:
        """Directory holding the ``.npz`` archives."""
        return self.root / "bundles"

    def keys(self) -> set[str]:
        """Every key with at least one stored bundle."""
        return self.index.completed_keys()

    def latest_record(self, key: str) -> dict | None:
        """The newest index record for ``key`` (or ``None``)."""
        return self.index.get(key)

    def revision_of(self, key: str) -> int:
        """Latest stored revision of ``key`` (0 when absent)."""
        record = self.latest_record(key)
        if record is None:
            return 0
        result = record.get("result", {})
        return int(result.get("revision", 0)) if isinstance(result, dict) else 0

    def put(
        self,
        key: str,
        bundle: ModelBundle,
        *,
        elapsed_s: float = 0.0,
    ) -> dict:
        """Persist ``bundle`` as the next revision of ``key``."""
        revision = self.revision_of(key) + 1
        filename = f"{_safe_stem(key)}-r{revision:04d}.npz"
        path = save_bundle(bundle, self.bundle_dir / filename)
        return self.index.put(
            key,
            {
                "kind": "model-bundle",
                "model": bundle.model_name,
                "metadata": bundle.metadata,
            },
            {
                "path": str(path.relative_to(self.root)),
                "revision": revision,
                "num_weights": len(bundle.weights),
            },
            elapsed_s=elapsed_s,
        )

    def load(self, key: str) -> ModelBundle:
        """Load the latest revision of ``key``."""
        record = self.latest_record(key)
        if record is None:
            raise ServingError(
                f"no model bundle stored under key {key!r} in {self.root}"
            )
        result = record.get("result", {})
        return load_bundle(self.root / str(result.get("path", "")))

    def __contains__(self, key: str) -> bool:
        return self.latest_record(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelStore(root={str(self.root)!r}, keys={len(self.keys())})"


def _safe_stem(key: str) -> str:
    """Filesystem-safe archive stem for an arbitrary store key."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in key)[:80]
